"""Per-stream dissemination trees with aggregate edge filters.

One tree per stream.  The root is the stream source; internal nodes are
entities.  Every entity registers the interests of the queries it hosts;
the filter on the edge towards a child is the *aggregate* interest of
the child's whole subtree, so an ancestor performs the paper's "early
filtering" without knowing individual downstream queries — only their
bounded-size aggregate, which keeps the layer loosely coupled.
"""

from __future__ import annotations

from typing import Callable

from repro.interest.aggregate import InterestAggregate, aggregate_interests
from repro.interest.compiled import compile_interest
from repro.interest.predicates import StreamInterest
from repro.streams.tuples import StreamTuple

SOURCE = "__source__"


class TreeStructureError(RuntimeError):
    """Raised on operations that would corrupt the tree."""


class DisseminationTree:
    """The dissemination tree of one stream.

    Args:
        stream_id: The stream this tree carries.
        max_fanout: Upper bound on children per node (the paper: "each
            entity only needs to transfer streams to a limited number of
            entities").  The source obeys the same bound in cooperative
            trees; the source-direct baseline passes ``None``-like large
            values explicitly.
        max_intervals: Complexity bound for aggregate filters.
    """

    def __init__(
        self,
        stream_id: str,
        *,
        max_fanout: int = 4,
        max_intervals: int = 8,
    ) -> None:
        if max_fanout < 1:
            raise ValueError("max_fanout must be >= 1")
        self.stream_id = stream_id
        self.max_fanout = max_fanout
        self.max_intervals = max_intervals
        self._parent: dict[str, str] = {}
        self._children: dict[str, list[str]] = {SOURCE: []}
        self._interests: dict[str, list[StreamInterest]] = {}
        self._required_attrs: dict[str, set[str] | None] = {}
        self._subtree_filter: dict[str, InterestAggregate | None] = {}
        self._subtree_attrs: dict[str, set[str] | None] = {}
        # entity -> compiled edge-filter kernel (None: nothing below
        # needs data, so the edge forwards nothing)
        self._compiled_filter: dict[
            str, Callable[[dict], bool] | None
        ] = {}
        self._dirty = True

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def entities(self) -> list[str]:
        """All attached entities (excluding the source)."""
        return [n for n in self._children if n != SOURCE]

    def parent_of(self, entity: str) -> str:
        """The upstream node (``SOURCE`` for first-hop entities)."""
        try:
            return self._parent[entity]
        except KeyError as exc:
            raise TreeStructureError(f"{entity} not in tree") from exc

    def children_of(self, node: str) -> list[str]:
        """Downstream entities of a node (node may be ``SOURCE``)."""
        return list(self._children.get(node, []))

    def contains(self, entity: str) -> bool:
        """Whether the entity is attached."""
        return entity in self._parent

    def fanout(self, node: str) -> int:
        """Current child count of a node."""
        return len(self._children.get(node, []))

    def depth_of(self, entity: str) -> int:
        """Hops from the source (first-hop entities are at depth 1)."""
        depth = 0
        node = entity
        while node != SOURCE:
            node = self.parent_of(node)
            depth += 1
            if depth > len(self._parent) + 1:
                raise TreeStructureError("parent cycle detected")
        return depth

    def attach(self, entity: str, parent: str = SOURCE) -> None:
        """Attach an entity under ``parent`` (fanout permitting)."""
        if entity in self._parent:
            raise TreeStructureError(f"{entity} already attached")
        if parent != SOURCE and parent not in self._parent:
            raise TreeStructureError(f"parent {parent} not in tree")
        if self.fanout(parent) >= self.max_fanout:
            raise TreeStructureError(f"{parent} is at max fanout")
        self._parent[entity] = parent
        self._children.setdefault(parent, []).append(entity)
        self._children.setdefault(entity, [])
        self._dirty = True

    def detach(self, entity: str) -> None:
        """Remove an entity; its children re-attach to its parent.

        Grandchildren may transiently exceed the parent's fanout bound —
        callers usually run :func:`improve_tree` afterwards.
        """
        if entity not in self._parent:
            raise TreeStructureError(f"{entity} not in tree")
        parent = self._parent.pop(entity)
        self._children[parent].remove(entity)
        for child in self._children.pop(entity, []):
            self._parent[child] = parent
            self._children[parent].append(child)
        self._interests.pop(entity, None)
        self._dirty = True

    def reattach(self, entity: str, new_parent: str) -> None:
        """Move an entity (with its subtree) under another node."""
        if entity not in self._parent:
            raise TreeStructureError(f"{entity} not in tree")
        if new_parent != SOURCE and new_parent not in self._parent:
            raise TreeStructureError(f"parent {new_parent} not in tree")
        if new_parent == entity or self._is_descendant(new_parent, entity):
            raise TreeStructureError("reattach would create a cycle")
        if self.fanout(new_parent) >= self.max_fanout:
            raise TreeStructureError(f"{new_parent} is at max fanout")
        old = self._parent[entity]
        self._children[old].remove(entity)
        self._parent[entity] = new_parent
        self._children[new_parent].append(entity)
        self._dirty = True

    def _is_descendant(self, node: str, ancestor: str) -> bool:
        while node != SOURCE:
            node = self._parent.get(node, SOURCE)
            if node == ancestor:
                return True
        return False

    def is_descendant(self, node: str, ancestor: str) -> bool:
        """Whether ``node`` lies strictly below ``ancestor``."""
        return self._is_descendant(node, ancestor)

    # ------------------------------------------------------------------
    # Interests and filters
    # ------------------------------------------------------------------
    def set_interests(self, entity: str, interests: list[StreamInterest]) -> None:
        """Declare the data requirement of the queries hosted at ``entity``."""
        for interest in interests:
            if interest.stream_id != self.stream_id:
                raise ValueError(
                    f"interest on {interest.stream_id} in tree of {self.stream_id}"
                )
        self._interests[entity] = list(interests)
        self._dirty = True

    def interests_of(self, entity: str) -> list[StreamInterest]:
        """The entity's own registered interests."""
        return list(self._interests.get(entity, []))

    def set_required_attributes(
        self, entity: str, attributes: set[str] | None
    ) -> None:
        """Declare which attributes the entity's queries read.

        ``None`` means "all attributes" (disables ancestor projection
        for every subtree containing this entity); an empty set means
        the entity reads nothing beyond relaying.
        """
        self._required_attrs[entity] = (
            None if attributes is None else set(attributes)
        )
        self._dirty = True

    def required_attributes_of(self, entity: str) -> set[str] | None:
        """The entity's own declared attribute requirement."""
        return self._required_attrs.get(entity, None)

    def _recompute_filters(self) -> None:
        self._subtree_filter.clear()
        self._subtree_attrs.clear()
        self._compiled_filter.clear()

        def visit(node: str) -> tuple[list[StreamInterest], set[str] | None]:
            collected = list(self._interests.get(node, []))
            attrs: set[str] | None
            if node == SOURCE:
                attrs = set()
            else:
                attrs = self._required_attrs.get(node, None)
                if attrs is not None:
                    attrs = set(attrs)
            for child in self._children.get(node, []):
                child_interests, child_attrs = visit(child)
                collected.extend(child_interests)
                if attrs is not None:
                    attrs = None if child_attrs is None else attrs | child_attrs
            if node != SOURCE:
                if collected:
                    agg = aggregate_interests(
                        collected, max_intervals=self.max_intervals
                    )
                    self._subtree_filter[node] = agg
                    # The compiled form is what the per-tuple and batch
                    # edge filters actually run (cached per shape, so a
                    # rebuild that produced an equal aggregate is free).
                    self._compiled_filter[node] = compile_interest(
                        agg.interest
                    )
                else:
                    self._subtree_filter[node] = None
                    self._compiled_filter[node] = None
                self._subtree_attrs[node] = attrs
            return collected, attrs

        visit(SOURCE)
        self._dirty = False

    def subtree_filter(self, entity: str) -> InterestAggregate | None:
        """The aggregate filter an ancestor applies before forwarding to
        ``entity``'s subtree; ``None`` means nothing below needs data."""
        if self._dirty:
            self._recompute_filters()
        return self._subtree_filter.get(entity)

    def needs_tuple(self, entity: str, values: dict[str, float]) -> bool:
        """Early-filter test for the edge into ``entity``'s subtree.

        Runs the compiled kernel of the subtree's aggregate interest —
        output-identical to ``subtree_filter(entity).matches_values``.
        """
        if self._dirty:
            self._recompute_filters()
        match = self._compiled_filter.get(entity)
        if match is None:
            return False
        return match(values)

    def compiled_subtree_filter(
        self, entity: str
    ) -> Callable[[dict], bool] | None:
        """The codegen'd edge-filter kernel for ``entity``'s subtree.

        ``None`` means nothing below needs data (the edge forwards
        nothing); otherwise the kernel is ``values -> bool``.
        """
        if self._dirty:
            self._recompute_filters()
        return self._compiled_filter.get(entity)

    def filter_batch(
        self, entity: str, batch: list[StreamTuple]
    ) -> list[StreamTuple]:
        """Early-filter a whole batch for the edge into ``entity``.

        Returns the tuples the subtree needs, in order — the batch
        analogue of calling :meth:`needs_tuple` per tuple.
        """
        if self._dirty:
            self._recompute_filters()
        match = self._compiled_filter.get(entity)
        if match is None:
            return []
        return [tup for tup in batch if match(tup.values)]

    def subtree_attributes(self, entity: str) -> set[str] | None:
        """Attributes the subtree below (and including) ``entity`` reads.

        ``None`` means some query needs everything — ancestors must not
        project tuples crossing the edge into this subtree.
        """
        if self._dirty:
            self._recompute_filters()
        return self._subtree_attrs.get(entity, None)
