"""Adaptive reorganisation of dissemination trees.

§3.1: "The shapes of these trees have significant impact on the
dissemination efficiency which deserve further study" — and the paper
builds on [13], *adaptive reorganization of coherency-preserving
dissemination tree*.  The maintainer periodically runs the local
reattachment pass on the simulation clock, repairs fanout violations
left by entity departures, and counts reorganisation work so benches
can weigh adaptation benefit against its churn.
"""

from __future__ import annotations

from typing import Callable

from repro.dissemination.builders import improve_tree
from repro.dissemination.tree import DisseminationTree
from repro.simulation.simulator import Simulator

Point = tuple[float, float]


def repair_after_crash(
    tree: DisseminationTree,
    dead_entity: str,
    source_pos: Point,
    positions: dict[str, Point],
    *,
    max_rounds: int = 2,
) -> int:
    """Re-parent a crashed entity's orphaned subtrees.

    Detaching splices the orphans onto the dead node's parent, which may
    exceed that parent's fanout bound; a local reattachment pass then
    repairs the bound and moves orphans to closer feasible parents.
    Clock-free so both the simulator and the live recovery layer can
    call it the moment a failure is detected.  Returns the number of
    direct children that were orphaned (0 when the entity was not in
    the tree).
    """
    if not tree.contains(dead_entity):
        return 0
    orphans = tree.children_of(dead_entity)
    tree.detach(dead_entity)
    live_positions = {
        entity: pos
        for entity, pos in positions.items()
        if tree.contains(entity)
    }
    improve_tree(tree, source_pos, live_positions, max_rounds=max_rounds)
    return len(orphans)


class TreeMaintainer:
    """Periodic local reorganisation of one dissemination tree.

    Args:
        sim: The simulator.
        tree: The tree to maintain.
        source_pos: The stream source's plane position.
        positions: Callable returning the current entity -> position
            map (membership may change between rounds).
        interval: Seconds between maintenance rounds.
    """

    def __init__(
        self,
        sim: Simulator,
        tree: DisseminationTree,
        source_pos: Point,
        positions: Callable[[], dict[str, Point]],
        *,
        interval: float = 5.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.tree = tree
        self.source_pos = source_pos
        self.positions = positions
        self.interval = interval
        self.rounds = 0
        self.total_moves = 0
        self._stop: Callable[[], None] | None = None

    def start(self) -> None:
        """Begin periodic maintenance."""
        if self._stop is None:
            self._stop = self.sim.every(self.interval, self.run_round)

    def stop(self) -> None:
        """Halt maintenance."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    def run_round(self) -> int:
        """One maintenance round; returns the number of reattachments."""
        self.rounds += 1
        positions = {
            entity: pos
            for entity, pos in self.positions().items()
            if self.tree.contains(entity)
        }
        moves = improve_tree(
            self.tree, self.source_pos, positions, max_rounds=1
        )
        self.total_moves += moves
        return moves
