"""Tuple forwarding over the simulated network.

Binds a :class:`DisseminationTree` to the network: the source pushes
each tuple to its first-hop children, every entity relays to its own
children, and — when early filtering is on — a tuple crosses an edge
only if the child subtree's aggregate filter matches.  Per-entity
delivery counts, byte volumes, and latencies are recorded, and the
network accounts every WAN byte, so E3/E4 read their series directly
from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dissemination.tree import SOURCE, DisseminationTree
from repro.simulation.network import Network
from repro.simulation.simulator import Simulator
from repro.streams.source import StreamSource
from repro.streams.tuples import StreamTuple

DeliveryHandler = Callable[[str, StreamTuple], None]


@dataclass
class DeliveryStats:
    """Per-entity delivery accounting for one stream."""

    tuples: dict[str, int] = field(default_factory=dict)
    bytes: dict[str, float] = field(default_factory=dict)
    latency_sum: dict[str, float] = field(default_factory=dict)
    filtered_edges: int = 0
    forwarded_edges: int = 0

    def record(self, entity: str, tup: StreamTuple, now: float) -> None:
        """Account one delivery at ``entity``."""
        self.tuples[entity] = self.tuples.get(entity, 0) + 1
        self.bytes[entity] = self.bytes.get(entity, 0.0) + tup.size
        self.latency_sum[entity] = (
            self.latency_sum.get(entity, 0.0) + (now - tup.created_at)
        )

    def mean_latency(self, entity: str) -> float:
        """Mean source-to-entity delivery latency."""
        count = self.tuples.get(entity, 0)
        if not count:
            return 0.0
        return self.latency_sum[entity] / count

    @property
    def total_tuples(self) -> int:
        """Deliveries summed over entities."""
        return sum(self.tuples.values())

    @property
    def total_bytes(self) -> float:
        """Bytes summed over entities."""
        return sum(self.bytes.values())


class DisseminationRuntime:
    """Executes one stream's dissemination tree on the network.

    Entity ids must equal the ids of their gateway network nodes; the
    source occupies its own network node (``source_node_id``).

    Args:
        sim: The simulator.
        network: The simulated network.
        tree: The dissemination tree to execute.
        source_node_id: Network node id of the stream source.
        early_filtering: Apply subtree aggregate filters on edges (the
            §3.1 optimisation); off = forward-all (ablation E4).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        tree: DisseminationTree,
        source_node_id: str,
        *,
        early_filtering: bool = True,
        transform: bool = False,
        bytes_per_attribute: float = 8.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.tree = tree
        self.source_node_id = source_node_id
        self.early_filtering = early_filtering
        # §3.1 "transforming": project tuples down to the attributes the
        # child subtree declared before crossing the edge
        self.transform = transform
        self.bytes_per_attribute = bytes_per_attribute
        self.stats = DeliveryStats()
        self._handlers: list[DeliveryHandler] = []
        self._unsubscribe: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    def on_delivery(self, handler: DeliveryHandler) -> None:
        """Register ``handler(entity_id, tuple)`` for every delivery."""
        self._handlers.append(handler)

    def attach_source(self, source: StreamSource) -> None:
        """Subscribe to a source so its emissions enter the tree."""
        if source.stream_id != self.tree.stream_id:
            raise ValueError(
                f"source {source.stream_id} vs tree {self.tree.stream_id}"
            )
        self._unsubscribe = source.subscribe(self.inject)

    def detach_source(self) -> None:
        """Stop receiving from the attached source."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # ------------------------------------------------------------------
    def inject(self, tup: StreamTuple) -> None:
        """Push one tuple into the tree at the source."""
        self._forward(SOURCE, self.source_node_id, tup)

    def inject_batch(self, batch: list[StreamTuple]) -> None:
        """Push a whole batch into the tree at the source.

        The batch path filters each child edge with the compiled
        aggregate kernel over the whole batch and crosses the edge with
        *one* network send carrying the surviving tuples — per-tuple
        delivery accounting is identical, per-send overhead is paid once
        per batch.
        """
        self._forward_batch(SOURCE, self.source_node_id, batch)

    def _forward(self, node: str, node_net_id: str, tup: StreamTuple) -> None:
        for child in self.tree.children_of(node):
            if self.early_filtering and not self.tree.needs_tuple(
                child, tup.values
            ):
                self.stats.filtered_edges += 1
                continue
            payload = tup
            if self.transform:
                payload = self._project_for(child, tup)
            self.stats.forwarded_edges += 1
            self.network.send(
                node_net_id,
                child,
                payload.size,
                payload=(child, payload),
                on_delivery=self._deliver,
            )

    def _forward_batch(
        self, node: str, node_net_id: str, batch: list[StreamTuple]
    ) -> None:
        for child in self.tree.children_of(node):
            if self.early_filtering:
                kept = self.tree.filter_batch(child, batch)
                self.stats.filtered_edges += len(batch) - len(kept)
                if not kept:
                    continue
            else:
                kept = list(batch)
            if self.transform:
                kept = [self._project_for(child, tup) for tup in kept]
            self.stats.forwarded_edges += len(kept)
            self.network.send(
                node_net_id,
                child,
                sum(tup.size for tup in kept),
                payload=(child, kept),
                on_delivery=self._deliver_batch,
            )

    def _deliver_batch(self, payload: tuple[str, list[StreamTuple]]) -> None:
        entity, batch = payload
        now = self.sim.now
        for tup in batch:
            self.stats.record(entity, tup, now)
            for handler in self._handlers:
                handler(entity, tup)
        self._forward_batch(entity, entity, batch)

    def _project_for(self, child: str, tup: StreamTuple) -> StreamTuple:
        """Shrink a tuple to the child subtree's declared attributes."""
        needed = self.tree.subtree_attributes(child)
        if needed is None:
            return tup
        kept = [name for name in tup.values if name in needed]
        if len(kept) == len(tup.values) or not kept:
            return tup
        return tup.project(
            kept, size=self.bytes_per_attribute * len(kept)
        )

    def _deliver(self, payload: tuple[str, StreamTuple]) -> None:
        entity, tup = payload
        self.stats.record(entity, tup, self.sim.now)
        for handler in self._handlers:
            handler(entity, tup)
        self._forward(entity, entity, tup)
