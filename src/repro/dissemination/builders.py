"""Dissemination tree construction strategies.

"A straightforward approach is to let the source nodes to feed the
entities directly.  However, relying solely on the sources to transfer
data is not scalable to the number of entities."  The builders give us
both the baseline and the cooperative alternatives:

* :func:`build_source_direct_tree` — the non-cooperative star;
* :func:`build_closest_parent_tree` — greedy locality-aware attachment
  under a fanout bound;
* :func:`build_balanced_tree` — a k-ary tree by distance rank (denser
  but less locality-aware, a useful contrast);
* :func:`improve_tree` — a local reattachment pass, since "the shapes of
  these trees have significant impact on the dissemination efficiency".
"""

from __future__ import annotations

import math

from repro.dissemination.tree import SOURCE, DisseminationTree

Point = tuple[float, float]


def _distance(a: Point, b: Point) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def build_source_direct_tree(
    stream_id: str,
    source_pos: Point,
    entity_positions: dict[str, Point],
) -> DisseminationTree:
    """The baseline: every entity is a direct child of the source."""
    tree = DisseminationTree(
        stream_id, max_fanout=max(1, len(entity_positions))
    )
    for entity in sorted(entity_positions):
        tree.attach(entity, SOURCE)
    return tree


def build_closest_parent_tree(
    stream_id: str,
    source_pos: Point,
    entity_positions: dict[str, Point],
    *,
    max_fanout: int = 4,
) -> DisseminationTree:
    """Greedy cooperative tree.

    Entities attach in order of distance from the source; each picks
    the closest already-attached node (source included) with spare
    fanout.  Near entities become relays for far ones, which is what
    bounds the source's egress to ``max_fanout`` streams.
    """
    tree = DisseminationTree(stream_id, max_fanout=max_fanout)
    order = sorted(
        entity_positions,
        key=lambda e: (_distance(entity_positions[e], source_pos), e),
    )
    positions = {SOURCE: source_pos, **entity_positions}
    attached: list[str] = [SOURCE]
    for entity in order:
        candidates = [n for n in attached if tree.fanout(n) < max_fanout]
        parent = min(
            candidates,
            key=lambda n: (_distance(positions[n], positions[entity]), n),
        )
        tree.attach(entity, parent)
        attached.append(entity)
    return tree


def build_balanced_tree(
    stream_id: str,
    source_pos: Point,
    entity_positions: dict[str, Point],
    *,
    max_fanout: int = 4,
) -> DisseminationTree:
    """A complete k-ary tree over the distance-from-source ordering."""
    tree = DisseminationTree(stream_id, max_fanout=max_fanout)
    order = sorted(
        entity_positions,
        key=lambda e: (_distance(entity_positions[e], source_pos), e),
    )
    for i, entity in enumerate(order):
        if i < max_fanout:
            parent = SOURCE
        else:
            parent = order[(i - max_fanout) // max_fanout]
        tree.attach(entity, parent)
    return tree


def improve_tree(
    tree: DisseminationTree,
    source_pos: Point,
    entity_positions: dict[str, Point],
    *,
    max_rounds: int = 3,
) -> int:
    """Local reattachment: move entities to closer feasible parents.

    An entity moves when another node (not in its own subtree) is
    strictly closer than its current parent and has spare fanout.
    Returns the number of moves made.  Also repairs fanout violations
    left by :meth:`DisseminationTree.detach`.
    """
    positions = {SOURCE: source_pos, **entity_positions}
    moves = 0
    for __ in range(max_rounds):
        moved_this_round = 0
        for entity in sorted(tree.entities):
            current = tree.parent_of(entity)
            current_d = _distance(positions[entity], positions[current])
            overloaded = tree.fanout(current) > tree.max_fanout
            candidates = [
                node
                for node in [SOURCE, *tree.entities]
                if node not in (entity, current)
                and tree.fanout(node) < tree.max_fanout
                and not tree.is_descendant(node, entity)
            ]
            if not candidates:
                continue
            best = min(
                candidates,
                key=lambda n: (_distance(positions[entity], positions[n]), n),
            )
            best_d = _distance(positions[entity], positions[best])
            if best_d < current_d or overloaded:
                tree.reattach(entity, best)
                moves += 1
                moved_this_round += 1
        if not moved_this_round:
            break
    return moves
