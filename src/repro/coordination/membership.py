"""Simulator-bound membership service around the coordinator tree.

Rule 2 of §3.2.1: "heartbeat messages are sent periodically among the
parent and children to detect any node failure", and rule 5 re-selects
parents periodically.  This runtime schedules both against the
simulation clock, counts heartbeat traffic, and repairs the tree a
detection-timeout after a silent crash.
"""

from __future__ import annotations

from typing import Callable

from repro.coordination.tree import CoordinatorTree, Member
from repro.simulation.simulator import Simulator


class MembershipRepair:
    """Clock-free coordinator-cluster repair around one tree.

    The repair itself (rule 2: remove the silent member, re-elect
    centres, merge/split as needed) has nothing to do with *how* the
    failure was detected, so it lives here — shared by the
    simulator-bound :class:`MembershipRuntime` (which detects via
    scheduled heartbeat silence) and the live runtime's heartbeat
    monitor (which detects on the asyncio clock).  Counts repairs and
    the protocol messages each one cost, and verifies the tree's
    invariants after every repair.
    """

    def __init__(self, tree: CoordinatorTree) -> None:
        self.tree = tree
        self.repairs = 0
        self.messages = 0

    def repair(self, member_id: str) -> bool:
        """Repair after a detected crash; ``False`` if not a member."""
        if member_id not in self.tree.members:
            return False
        before = self.tree.stats.messages
        self.tree.crash(member_id)
        self.repairs += 1
        self.messages += self.tree.stats.messages - before
        violations = self.tree.check_invariants()
        if violations:
            raise RuntimeError(
                f"coordinator repair of {member_id} broke invariants: "
                + "; ".join(violations)
            )
        return True


class MembershipRuntime:
    """Drives heartbeats, crash detection, and re-centering.

    Args:
        sim: The simulator.
        tree: The coordinator tree being maintained.
        heartbeat_interval: Seconds between heartbeat rounds.
        recenter_interval: Seconds between re-centering sweeps.
        detection_multiplier: A crash is detected after
            ``detection_multiplier * heartbeat_interval`` of silence.
    """

    def __init__(
        self,
        sim: Simulator,
        tree: CoordinatorTree,
        *,
        heartbeat_interval: float = 1.0,
        recenter_interval: float = 10.0,
        detection_multiplier: float = 3.0,
    ) -> None:
        self.sim = sim
        self.tree = tree
        self.heartbeat_interval = heartbeat_interval
        self.recenter_interval = recenter_interval
        self.detection_multiplier = detection_multiplier
        self.heartbeat_messages = 0
        self.detected_crashes = 0
        self.repairer = MembershipRepair(tree)
        self._crashed: set[str] = set()
        self._stops: list[Callable[[], None]] = []
        self.on_crash_detected: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic heartbeats and re-centering."""
        self._stops.append(
            self.sim.every(self.heartbeat_interval, self._heartbeat_round)
        )
        self._stops.append(
            self.sim.every(self.recenter_interval, self._recenter_round)
        )

    def stop(self) -> None:
        """Cancel all periodic activity."""
        for stop in self._stops:
            stop()
        self._stops.clear()

    # ------------------------------------------------------------------
    def join(self, member: Member) -> int:
        """Graceful join (returns routing hops)."""
        return self.tree.join(member)

    def leave(self, member_id: str) -> None:
        """Graceful leave (parent/children notified synchronously)."""
        self.tree.leave(member_id)

    def crash(self, member_id: str) -> None:
        """Silent failure: the tree repairs only after detection."""
        if member_id not in self.tree.members:
            return
        self._crashed.add(member_id)
        delay = self.detection_multiplier * self.heartbeat_interval

        def detect() -> None:
            if member_id not in self._crashed:
                return
            self._crashed.discard(member_id)
            self.detected_crashes += 1
            self.repairer.repair(member_id)
            if self.on_crash_detected is not None:
                self.on_crash_detected(member_id)

        self.sim.schedule(delay, detect)

    # ------------------------------------------------------------------
    def _heartbeat_round(self) -> None:
        """Exchange heartbeats along every parent-child edge.

        Each cluster exchanges leader<->member heartbeats in both
        directions; crashed members neither send nor receive.
        """
        for layer in self.tree.layers:
            for cluster in layer:
                if cluster.leader_id is None:
                    continue
                live = [
                    mid
                    for mid in cluster.member_ids
                    if mid != cluster.leader_id and mid not in self._crashed
                ]
                self.heartbeat_messages += 2 * len(live)

    def _recenter_round(self) -> None:
        self.tree.recenter()
