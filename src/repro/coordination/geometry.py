"""Geometric helpers for cluster maintenance.

The paper's tree keeps two geometric invariants: "the parent of a
cluster is the geographical center", and splits "minimize the radii
among the two clusters".  Positions live in the same WAN plane the
network simulator uses, so geographic distance is a direct proxy for
latency.
"""

from __future__ import annotations

import math

Point = tuple[float, float]


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two plane points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def cluster_radius(points: dict[str, Point], centre_id: str) -> float:
    """Max distance from ``centre_id`` to any other member."""
    centre = points[centre_id]
    return max(
        (distance(centre, p) for mid, p in points.items() if mid != centre_id),
        default=0.0,
    )


def centre_member(points: dict[str, Point]) -> str:
    """The member minimising the cluster radius (1-centre on members).

    Ties break on member id so leader election is deterministic.
    """
    if not points:
        raise ValueError("empty cluster has no centre")
    return min(points, key=lambda mid: (cluster_radius(points, mid), mid))


def farthest_pair(points: dict[str, Point]) -> tuple[str, str]:
    """The two members at maximum mutual distance (split seeds)."""
    ids = sorted(points)
    if len(ids) < 2:
        raise ValueError("need at least two members")
    best = (ids[0], ids[1])
    best_d = -1.0
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            d = distance(points[a], points[b])
            if d > best_d:
                best_d = d
                best = (a, b)
    return best


def min_radii_bipartition(
    points: dict[str, Point], min_size: int
) -> tuple[list[str], list[str]]:
    """Split members into two groups, each of at least ``min_size``,
    heuristically minimising the two cluster radii.

    Strategy: seed with the farthest pair, greedily assign every other
    member to the nearer seed, then rebalance by moving the boundary
    members with the smallest distance penalty until both sides meet the
    size floor.
    """
    if len(points) < 2 * min_size:
        raise ValueError(
            f"cannot split {len(points)} members into two parts of >= {min_size}"
        )
    seed_a, seed_b = farthest_pair(points)
    group_a, group_b = [seed_a], [seed_b]
    rest = sorted(mid for mid in points if mid not in (seed_a, seed_b))
    for mid in rest:
        da = distance(points[mid], points[seed_a])
        db = distance(points[mid], points[seed_b])
        (group_a if da <= db else group_b).append(mid)

    def rebalance(small: list[str], big: list[str], seed_small: str) -> None:
        while len(small) < min_size:
            movable = [m for m in big if m not in (seed_a, seed_b)]
            mid = min(
                movable,
                key=lambda m: (distance(points[m], points[seed_small]), m),
            )
            big.remove(mid)
            small.append(mid)

    if len(group_a) < min_size:
        rebalance(group_a, group_b, seed_a)
    elif len(group_b) < min_size:
        rebalance(group_b, group_a, seed_b)
    return group_a, group_b
