"""The hierarchical coordinator tree data structure.

Layered-cluster model (after Banerjee et al., which §3.2.1 adapts):

* layer 0 partitions all member entities into clusters;
* the leader (geographical centre) of every layer-``L`` cluster is a
  member of exactly one layer-``L+1`` cluster;
* the topmost layer holds a single cluster whose leader is the **root
  coordinator**.

Maintenance implements the paper's five rules:

1. joins route from the root towards the closest leader, level by level,
   and land in a layer-0 cluster;
2. leaves notify parent and children; a departed coordinator is replaced
   by a new centre among the remaining members;
3. clusters exceeding ``3k - 1`` members split into two parts of at
   least ``floor(3k / 2)`` with minimised radii;
4. clusters falling below ``k`` merge into their closest sibling;
5. periodic re-centering re-elects the leader when the current one is no
   longer the cluster centre.

All operations count protocol messages so experiment E5 can report the
per-join/per-query message cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.coordination.geometry import (
    centre_member,
    distance,
    min_radii_bipartition,
)

Point = tuple[float, float]


@dataclass(frozen=True, slots=True)
class Member:
    """A tree participant (an entity's coordinator endpoint)."""

    member_id: str
    x: float
    y: float

    @property
    def point(self) -> Point:
        """Position in the WAN plane."""
        return (self.x, self.y)


@dataclass
class Cluster:
    """One cluster at one layer of the tree."""

    cluster_id: int
    level: int
    member_ids: list[str]
    leader_id: str | None = None

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.member_ids)


@dataclass
class TreeStats:
    """Protocol accounting across the tree's lifetime."""

    messages: int = 0
    joins: int = 0
    leaves: int = 0
    splits: int = 0
    merges: int = 0
    leader_changes: int = 0


class CoordinatorTree:
    """The layered cluster tree with incremental maintenance.

    Args:
        k: Cluster size parameter; sizes stay within ``[k, 3k - 1]``
            wherever a layer has more than one cluster.
    """

    def __init__(self, k: int = 3) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = k
        self.members: dict[str, Member] = {}
        self.layers: list[list[Cluster]] = []
        self.stats = TreeStats()
        self._cluster_ids = itertools.count()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of layers (0 when empty)."""
        return len(self.layers)

    @property
    def root_id(self) -> str | None:
        """The root coordinator's member id."""
        if not self.layers:
            return None
        return self.layers[-1][0].leader_id

    @property
    def max_cluster_size(self) -> int:
        """Paper bound: clusters never exceed ``3k - 1`` members."""
        return 3 * self.k - 1

    def member_ids(self) -> list[str]:
        """All member ids, sorted."""
        return sorted(self.members)

    def _points(self, ids: list[str]) -> dict[str, Point]:
        return {mid: self.members[mid].point for mid in ids}

    def _cluster_of(self, level: int, member_id: str) -> Cluster:
        for cluster in self.layers[level]:
            if member_id in cluster.member_ids:
                return cluster
        raise KeyError(f"{member_id} not in any cluster at level {level}")

    def _cluster_led_by(self, level: int, leader_id: str) -> Cluster:
        for cluster in self.layers[level]:
            if cluster.leader_id == leader_id:
                return cluster
        raise KeyError(f"no level-{level} cluster led by {leader_id}")

    def cluster_led_by(self, level: int, leader_id: str) -> Cluster:
        """Public lookup of the cluster a coordinator leads at ``level``."""
        return self._cluster_led_by(level, leader_id)

    def levels_of(self, member_id: str) -> list[int]:
        """Layers in which this member appears (leaders climb layers)."""
        present = []
        for level, layer in enumerate(self.layers):
            if any(member_id in c.member_ids for c in layer):
                present.append(level)
        return present

    def subtree_members(self, member_id: str, level: int) -> set[str]:
        """Level-0 members reachable below ``member_id`` at ``level``."""
        if level == 0:
            return {member_id}
        cluster = self._cluster_led_by(level - 1, member_id)
        out: set[str] = set()
        for child in cluster.member_ids:
            out |= self.subtree_members(child, level - 1)
        return out

    # ------------------------------------------------------------------
    # Rule 1: join
    # ------------------------------------------------------------------
    def join(self, member: Member) -> int:
        """Add a member, routing the request down from the root.

        Returns the number of routing hops (≈ messages) the join cost.
        """
        if member.member_id in self.members:
            raise ValueError(f"{member.member_id} already joined")
        self.members[member.member_id] = member
        self.stats.joins += 1

        if not self.layers:
            self.layers = [
                [
                    Cluster(
                        cluster_id=next(self._cluster_ids),
                        level=0,
                        member_ids=[member.member_id],
                        leader_id=member.member_id,
                    )
                ]
            ]
            return 0

        hops = 0
        level = self.depth - 1
        cluster = self.layers[level][0]
        while cluster.level > 0:
            candidates = self._points(cluster.member_ids)
            closest = min(
                candidates,
                key=lambda mid: (distance(candidates[mid], member.point), mid),
            )
            cluster = self._cluster_led_by(cluster.level - 1, closest)
            hops += 1
            self.stats.messages += 1
        cluster.member_ids.append(member.member_id)
        self.stats.messages += 1
        hops += 1
        self._maintain()
        return hops

    # ------------------------------------------------------------------
    # Rule 2: leave (graceful) / crash repair
    # ------------------------------------------------------------------
    def leave(self, member_id: str) -> None:
        """Remove a member; coordinators are replaced by new centres."""
        if member_id not in self.members:
            raise KeyError(member_id)
        # A leaving node messages its parent and children (rule 2).
        self.stats.messages += 1 + self._children_count(member_id)
        self.stats.leaves += 1
        del self.members[member_id]
        for layer in self.layers:
            for cluster in layer:
                if member_id in cluster.member_ids:
                    cluster.member_ids.remove(member_id)
                    if cluster.leader_id == member_id:
                        cluster.leader_id = None
        self.layers = [
            [c for c in layer if c.member_ids] for layer in self.layers
        ]
        self.layers = [layer for layer in self.layers if layer]
        self._renumber()
        self._maintain()

    def crash(self, member_id: str) -> None:
        """Repair after a detected failure (same repair as leave)."""
        if member_id in self.members:
            self.leave(member_id)

    def _children_count(self, member_id: str) -> int:
        count = 0
        for level in self.levels_of(member_id):
            if level == 0:
                continue
            try:
                count += self._cluster_led_by(level - 1, member_id).size
            except KeyError:
                pass
        return count

    # ------------------------------------------------------------------
    # Rule 5: periodic re-centering
    # ------------------------------------------------------------------
    def recenter(self) -> int:
        """Re-elect leaders everywhere; returns the number of changes."""
        before = self.stats.leader_changes
        self._maintain()
        return self.stats.leader_changes - before

    # ------------------------------------------------------------------
    # Maintenance: sizes, leaders, upper layers
    # ------------------------------------------------------------------
    def _renumber(self) -> None:
        """Re-align ``cluster.level`` with layer indices after deletions."""
        for level, layer in enumerate(self.layers):
            for cluster in layer:
                cluster.level = level

    def _maintain(self) -> None:
        if not self.layers:
            return
        level = 0
        while level < self.depth:
            self._fix_sizes(level)
            self._elect_leaders(level)
            self._sync_above(level)
            level += 1

    def _fix_sizes(self, level: int) -> None:
        layer = self.layers[level]
        # Splits (rule 3): repeat until no cluster exceeds the bound.
        changed = True
        while changed:
            changed = False
            for cluster in list(layer):
                if cluster.size > self.max_cluster_size:
                    self._split(layer, cluster)
                    changed = True
        # Merges (rule 4): only when siblings exist to merge into.
        changed = True
        while changed and len(layer) > 1:
            changed = False
            for cluster in list(layer):
                if cluster.size < self.k and len(layer) > 1:
                    self._merge(layer, cluster)
                    changed = True
                    break
        # A merge can overshoot the bound; split again if so.
        for cluster in list(layer):
            if cluster.size > self.max_cluster_size:
                self._split(layer, cluster)

    def _split(self, layer: list[Cluster], cluster: Cluster) -> None:
        points = self._points(cluster.member_ids)
        min_size = (3 * self.k) // 2
        group_a, group_b = min_radii_bipartition(points, min_size)
        self.stats.splits += 1
        # Splitting notifies every member of its new cluster.
        self.stats.messages += cluster.size
        layer.remove(cluster)
        for group in (group_a, group_b):
            layer.append(
                Cluster(
                    cluster_id=next(self._cluster_ids),
                    level=cluster.level,
                    member_ids=sorted(group),
                )
            )

    def _merge(self, layer: list[Cluster], cluster: Cluster) -> None:
        siblings = [c for c in layer if c is not cluster]
        points = self._points(cluster.member_ids)
        own_centre = centre_member(points)

        def sibling_distance(sib: Cluster) -> float:
            sib_points = self._points(sib.member_ids)
            sib_centre = sib.leader_id or centre_member(sib_points)
            return distance(
                self.members[own_centre].point, self.members[sib_centre].point
            )

        target = min(siblings, key=lambda c: (sibling_distance(c), c.cluster_id))
        self.stats.merges += 1
        self.stats.messages += cluster.size  # merge request + moves
        target.member_ids = sorted(target.member_ids + cluster.member_ids)
        layer.remove(cluster)

    def _elect_leaders(self, level: int) -> None:
        for cluster in self.layers[level]:
            points = self._points(cluster.member_ids)
            centre = centre_member(points)
            if cluster.leader_id != centre:
                if cluster.leader_id is not None:
                    self.stats.leader_changes += 1
                    self.stats.messages += cluster.size
                cluster.leader_id = centre

    def _sync_above(self, level: int) -> None:
        layer = self.layers[level]
        if len(layer) == 1:
            # This layer's lone leader is the root; drop stale layers.
            del self.layers[level + 1 :]
            return
        desired = {c.leader_id for c in layer if c.leader_id is not None}
        if level + 1 >= self.depth:
            self.layers.append(
                [
                    Cluster(
                        cluster_id=next(self._cluster_ids),
                        level=level + 1,
                        member_ids=sorted(desired),
                    )
                ]
            )
            return
        upper = self.layers[level + 1]
        current = {mid for c in upper for mid in c.member_ids}
        for gone in current - desired:
            cluster = self._cluster_of(level + 1, gone)
            cluster.member_ids.remove(gone)
            if cluster.leader_id == gone:
                cluster.leader_id = None
        self.layers[level + 1] = [c for c in upper if c.member_ids]
        upper = self.layers[level + 1]
        if not upper:
            upper.append(
                Cluster(
                    cluster_id=next(self._cluster_ids),
                    level=level + 1,
                    member_ids=[],
                )
            )
        for new in sorted(desired - current):
            target = min(
                upper,
                key=lambda c: (
                    self._distance_to_cluster(new, c),
                    c.cluster_id,
                ),
            )
            target.member_ids.append(new)
            target.member_ids.sort()
            self.stats.messages += 1

    def _distance_to_cluster(self, member_id: str, cluster: Cluster) -> float:
        if not cluster.member_ids:
            return 0.0
        points = self._points(cluster.member_ids)
        anchor = cluster.leader_id or centre_member(points)
        return distance(self.members[member_id].point, self.members[anchor].point)

    # ------------------------------------------------------------------
    # Invariant checking (used by tests and E5)
    # ------------------------------------------------------------------
    def check_invariants(self) -> list[str]:
        """Return human-readable invariant violations (empty = healthy)."""
        problems: list[str] = []
        if not self.layers:
            if self.members:
                problems.append("members exist but tree has no layers")
            return problems

        level0 = [mid for c in self.layers[0] for mid in c.member_ids]
        if sorted(level0) != sorted(self.members):
            problems.append("layer 0 does not partition the membership")
        if len(level0) != len(set(level0)):
            problems.append("a member appears in two layer-0 clusters")

        for level, layer in enumerate(self.layers):
            for cluster in layer:
                if cluster.leader_id not in cluster.member_ids:
                    problems.append(
                        f"level {level} cluster {cluster.cluster_id}: "
                        "leader not a member"
                    )
                if cluster.size > self.max_cluster_size:
                    problems.append(
                        f"level {level} cluster {cluster.cluster_id}: "
                        f"size {cluster.size} > {self.max_cluster_size}"
                    )
                if cluster.size < self.k and len(layer) > 1:
                    problems.append(
                        f"level {level} cluster {cluster.cluster_id}: "
                        f"size {cluster.size} < k={self.k} with siblings"
                    )
            if level + 1 < self.depth:
                leaders = sorted(
                    c.leader_id for c in layer if c.leader_id is not None
                )
                above = sorted(
                    mid for c in self.layers[level + 1] for mid in c.member_ids
                )
                if leaders != above:
                    problems.append(
                        f"layer {level + 1} members != layer {level} leaders"
                    )
        if len(self.layers[-1]) != 1:
            problems.append("top layer must contain exactly one cluster")
        return problems

    def cluster_sizes(self, level: int) -> list[int]:
        """Sizes of clusters at one layer (for distribution reports)."""
        return sorted(c.size for c in self.layers[level])
