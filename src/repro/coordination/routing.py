"""Level-by-level query routing through the coordinator tree.

"Queries are distributed level by level down the tree.  An internal
coordinator distributes query to its child coordinators.  The queries
are finally distributed to the entities by the leaf coordinators.  A
higher level coordinator distributes queries based on coarser
information." (§3.2.1)

The coarse information here is, per child subtree, the aggregate load
and the subtree's geographic anchor; leaf coordinators pick the least
scored entity in their cluster.  Routing a query costs one message per
level traversed, which is how the tree stays "scalable to fast query
streams": the root does O(1) work per query instead of inspecting all
entities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coordination.geometry import distance
from repro.coordination.tree import CoordinatorTree


@dataclass(frozen=True, slots=True)
class RoutingPolicy:
    """Scoring weights for choosing a child subtree.

    ``score = load_weight * (subtree load / subtree size)
            + distance_weight * distance(child anchor, client)``
    """

    load_weight: float = 1.0
    distance_weight: float = 1.0


class QueryRouter:
    """Routes queries down a coordinator tree onto entities.

    Args:
        tree: The coordinator tree over entities.
        policy: Scoring weights.
        external_load: Optional ``entity_id -> load`` signal (e.g. the
            monitoring service's smoothed CPU loads) added to the
            router's own assigned-load bookkeeping, so routing reacts to
            measured hotness and not just admission history.
    """

    def __init__(
        self,
        tree: CoordinatorTree,
        policy: RoutingPolicy | None = None,
        *,
        external_load=None,
    ) -> None:
        self.tree = tree
        self.policy = policy or RoutingPolicy()
        self.external_load = external_load
        self.loads: dict[str, float] = {}
        self.assignments: dict[str, str] = {}
        self.routing_messages = 0

    # ------------------------------------------------------------------
    def load_of(self, member_id: str) -> float:
        """Current load view of one entity (assigned + measured)."""
        load = self.loads.get(member_id, 0.0)
        if self.external_load is not None:
            load += self.external_load(member_id)
        return load

    def _subtree_load(self, member_id: str, level: int) -> tuple[float, int]:
        members = self.tree.subtree_members(member_id, level)
        return sum(self.load_of(m) for m in members), len(members)

    def _score(
        self, member_id: str, level: int, client: tuple[float, float]
    ) -> float:
        load, size = self._subtree_load(member_id, level)
        anchor = self.tree.members[member_id].point
        return (
            self.policy.load_weight * load / max(1, size)
            + self.policy.distance_weight * distance(anchor, client)
        )

    # ------------------------------------------------------------------
    def route(
        self,
        query_id: str,
        load: float,
        client: tuple[float, float] = (0.5, 0.5),
    ) -> str:
        """Assign a query to an entity; returns the entity's member id.

        Raises ``RuntimeError`` on an empty tree.
        """
        if self.tree.root_id is None:
            raise RuntimeError("cannot route on an empty coordinator tree")

        # Descend level by level: at each layer the coordinator picks the
        # child subtree with the best (coarse) score, starting from the
        # top-layer cluster whose members are the highest coordinators.
        level = self.tree.depth - 1
        cluster = self.tree.layers[-1][0]
        while True:
            self.routing_messages += 1
            current = min(
                cluster.member_ids,
                key=lambda mid: (self._score(mid, level, client), mid),
            )
            if level == 0:
                break
            cluster = self.tree.cluster_led_by(level - 1, current)
            level -= 1

        self.loads[current] = self.loads.get(current, 0.0) + load
        self.assignments[query_id] = current
        return current

    def release(self, query_id: str, load: float) -> None:
        """Return a departed query's load to the pool."""
        entity = self.assignments.pop(query_id, None)
        if entity is not None:
            self.loads[entity] = max(0.0, self.loads.get(entity, 0.0) - load)

    def rehome_orphans(self, failed_entity: str) -> list[str]:
        """Queries stranded on a failed entity (to be re-routed)."""
        orphans = [
            qid for qid, entity in self.assignments.items() if entity == failed_entity
        ]
        for qid in orphans:
            del self.assignments[qid]
        self.loads.pop(failed_entity, None)
        return orphans

    # ------------------------------------------------------------------
    def imbalance(self) -> float:
        """Max/mean entity load over all tree members (1.0 = perfect)."""
        members = self.tree.member_ids()
        if not members:
            return 1.0
        loads = [self.load_of(m) for m in members]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean
