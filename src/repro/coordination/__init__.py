"""Hierarchical coordinator tree for scalable query distribution (§3.2.1).

Reimplements the clustered-tree mechanism the paper adapts from Banerjee
et al.'s scalable application-layer multicast: members are grouped into
clusters of size ``k`` to ``3k-1`` (the root and second-to-root levels
may be smaller), the parent of each cluster is its geographical centre,
and the tree maintains itself incrementally under joins, leaves, crashes,
splits, merges, and periodic re-centering.

Queries are distributed level by level down the tree; higher coordinators
decide on coarser (subtree-aggregated) information.
"""

from repro.coordination.geometry import centre_member, cluster_radius
from repro.coordination.membership import MembershipRepair, MembershipRuntime
from repro.coordination.routing import QueryRouter, RoutingPolicy
from repro.coordination.tree import Cluster, CoordinatorTree, Member, TreeStats

__all__ = [
    "Member",
    "Cluster",
    "CoordinatorTree",
    "TreeStats",
    "MembershipRepair",
    "MembershipRuntime",
    "QueryRouter",
    "RoutingPolicy",
    "centre_member",
    "cluster_radius",
]
