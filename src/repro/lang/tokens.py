"""Tokenizer for the continuous-query language.

Stream names may contain dots and dashes (``exchange-0.trades``), so a
NAME token is greedy over ``[A-Za-z0-9_.-]`` and keywords are recognised
case-insensitively afterwards.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lang.errors import QuerySyntaxError

KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "between",
    "in",
    "join",
    "on",
    "within",
    "window",
    "group",
    "by",
    "as",
}

AGGREGATES = {"avg", "sum", "count", "min", "max"}

# token kinds
NAME = "NAME"
NUMBER = "NUMBER"
KEYWORD = "KEYWORD"
SYMBOL = "SYMBOL"
END = "END"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<symbol><=|>=|[*(),<>=])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token."""

    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword test."""
        return self.kind == KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        """Exact symbol test."""
        return self.kind == SYMBOL and self.value == symbol


def tokenize(text: str) -> list[Token]:
    """Tokenize a query string.

    Raises:
        QuerySyntaxError: On any unrecognised character.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r}", position
            )
        if match.lastgroup == "ws":
            position = match.end()
            continue
        value = match.group()
        if match.lastgroup == "number":
            tokens.append(Token(NUMBER, value, position))
        elif match.lastgroup == "name":
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, position))
            else:
                tokens.append(Token(NAME, value, position))
        else:
            tokens.append(Token(SYMBOL, value, position))
        position = match.end()
    tokens.append(Token(END, "", len(text)))
    return tokens
