"""Errors raised by the query language front-end."""

from __future__ import annotations


class QuerySyntaxError(ValueError):
    """A query text failed to tokenize, parse, or compile.

    Attributes:
        message: What went wrong.
        position: Character offset in the source text (when known).
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
