"""Render query ASTs back to canonical text.

Useful for logging what the portal actually admitted, and it gives the
test suite a parse/render round-trip property: ``parse(render(ast)) ==
ast`` for every canonical AST.
"""

from __future__ import annotations

import math

from repro.lang.parser import Predicate, QueryAst


def _number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_predicate(predicate: Predicate) -> str:
    name = (
        f"{predicate.stream}.{predicate.attribute}"
        if predicate.stream is not None
        else predicate.attribute
    )
    if predicate.ranges is not None:
        values = ", ".join(_number(lo) for lo, __ in predicate.ranges)
        return f"{name} IN ({values})"
    if math.isinf(predicate.lo) and math.isinf(predicate.hi):
        raise ValueError("predicate with two infinite bounds")
    if math.isinf(predicate.lo):
        return f"{name} <= {_number(predicate.hi)}"
    if math.isinf(predicate.hi):
        return f"{name} >= {_number(predicate.lo)}"
    if predicate.lo == predicate.hi:
        return f"{name} = {_number(predicate.lo)}"
    return (
        f"{name} BETWEEN {_number(predicate.lo)} AND {_number(predicate.hi)}"
    )


def render_query(ast: QueryAst) -> str:
    """The canonical text form of a parsed query."""
    if ast.select_all:
        projection = "*"
    else:
        parts = []
        for item in ast.items:
            if item.aggregate is not None:
                parts.append(f"{item.aggregate.upper()}({item.attribute})")
            else:
                parts.append(item.attribute)
        projection = ", ".join(parts)
    pieces = [f"SELECT {projection} FROM {ast.stream}"]
    if ast.join is not None:
        pieces.append(
            f"JOIN {ast.join.stream} ON {ast.join.attribute} "
            f"WITHIN {_number(ast.join.window)}"
        )
    if ast.predicates:
        rendered = " AND ".join(
            _render_predicate(p) for p in ast.predicates
        )
        pieces.append(f"WHERE {rendered}")
    if ast.window is not None:
        clause = f"WINDOW {_number(ast.window.seconds)}"
        if ast.window.group_by is not None:
            clause += f" GROUP BY {ast.window.group_by}"
        pieces.append(clause)
    return " ".join(pieces)
