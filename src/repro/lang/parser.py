"""Recursive-descent parser producing the query AST."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.lang.errors import QuerySyntaxError
from repro.lang.tokens import (
    AGGREGATES,
    END,
    NAME,
    NUMBER,
    SYMBOL,
    Token,
    tokenize,
)


@dataclass(frozen=True, slots=True)
class ProjectionItem:
    """One SELECT item: a plain attribute or ``AGG(attribute)``."""

    attribute: str
    aggregate: str | None = None


@dataclass(frozen=True, slots=True)
class Predicate:
    """A range constraint, normalised to ``lo <= attr <= hi``.

    ``stream`` is ``None`` for unqualified attributes; comparison
    predicates use infinite bounds on the open side (the compiler clips
    to the schema domain).  ``IN (a, b, c)`` lists compile to a union of
    point ranges carried in ``ranges`` (``lo``/``hi`` then hold the
    hull); plain predicates leave ``ranges`` as ``None``.
    """

    attribute: str
    lo: float
    hi: float
    stream: str | None = None
    ranges: tuple[tuple[float, float], ...] | None = None

    def interval_bounds(self) -> tuple[tuple[float, float], ...]:
        """The disjunctive ranges this predicate allows."""
        if self.ranges is not None:
            return self.ranges
        return ((self.lo, self.hi),)


@dataclass(frozen=True, slots=True)
class JoinClause:
    """``JOIN stream ON attribute [WITHIN seconds]``."""

    stream: str
    attribute: str
    window: float = 5.0


@dataclass(frozen=True, slots=True)
class WindowClause:
    """``WINDOW seconds [GROUP BY attribute]``."""

    seconds: float
    group_by: str | None = None


@dataclass(frozen=True)
class QueryAst:
    """A parsed continuous query."""

    stream: str
    select_all: bool
    items: tuple[ProjectionItem, ...]
    predicates: tuple[Predicate, ...]
    join: JoinClause | None = None
    window: WindowClause | None = None


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != END:
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self.current
        if not token.is_keyword(word):
            raise QuerySyntaxError(
                f"expected {word.upper()}, found {token.value!r}",
                token.position,
            )
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self.current
        if not token.is_symbol(symbol):
            raise QuerySyntaxError(
                f"expected {symbol!r}, found {token.value!r}", token.position
            )
        return self._advance()

    def _expect_name(self, what: str = "name") -> str:
        token = self.current
        if token.kind != NAME:
            raise QuerySyntaxError(
                f"expected {what}, found {token.value!r}", token.position
            )
        self._advance()
        return token.value

    def _expect_number(self) -> float:
        token = self.current
        if token.kind != NUMBER:
            raise QuerySyntaxError(
                f"expected a number, found {token.value!r}", token.position
            )
        self._advance()
        return float(token.value)

    # ------------------------------------------------------------------
    def parse(self) -> QueryAst:
        self._expect_keyword("select")
        select_all, items = self._projection()
        self._expect_keyword("from")
        stream = self._expect_name("stream name")
        join = self._join() if self.current.is_keyword("join") else None
        predicates: tuple[Predicate, ...] = ()
        if self.current.is_keyword("where"):
            self._advance()
            predicates = self._predicates()
        window = self._window() if self.current.is_keyword("window") else None
        if self.current.kind != END:
            raise QuerySyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return QueryAst(
            stream=stream,
            select_all=select_all,
            items=items,
            predicates=predicates,
            join=join,
            window=window,
        )

    def _projection(self) -> tuple[bool, tuple[ProjectionItem, ...]]:
        if self.current.is_symbol("*"):
            self._advance()
            return True, ()
        items = [self._projection_item()]
        while self.current.is_symbol(","):
            self._advance()
            items.append(self._projection_item())
        return False, tuple(items)

    def _projection_item(self) -> ProjectionItem:
        name = self._expect_name("projection item")
        if name.lower() in AGGREGATES and self.current.is_symbol("("):
            self._advance()
            attribute = self._expect_name("aggregated attribute")
            self._expect_symbol(")")
            return ProjectionItem(attribute=attribute, aggregate=name.lower())
        return ProjectionItem(attribute=name)

    def _join(self) -> JoinClause:
        self._expect_keyword("join")
        stream = self._expect_name("joined stream")
        self._expect_keyword("on")
        attribute = self._expect_name("join attribute")
        window = 5.0
        if self.current.is_keyword("within"):
            self._advance()
            window = self._expect_number()
            if window <= 0:
                raise QuerySyntaxError("WITHIN window must be positive")
        return JoinClause(stream=stream, attribute=attribute, window=window)

    def _predicates(self) -> tuple[Predicate, ...]:
        predicates = [self._predicate()]
        while self.current.is_keyword("and"):
            self._advance()
            predicates.append(self._predicate())
        return tuple(predicates)

    def _predicate(self) -> Predicate:
        qualified = self._expect_name("attribute")
        stream: str | None = None
        attribute = qualified
        # a stream qualifier looks like "<stream>.<attr>"; stream ids
        # themselves contain dots, so split on the last one only when the
        # prefix is plausible (contains a dot or dash, i.e. a stream id)
        if "." in qualified:
            prefix, __, last = qualified.rpartition(".")
            if "." in prefix or "-" in prefix:
                stream, attribute = prefix, last

        token = self.current
        if token.is_keyword("in"):
            self._advance()
            self._expect_symbol("(")
            values = [self._expect_number()]
            while self.current.is_symbol(","):
                self._advance()
                values.append(self._expect_number())
            self._expect_symbol(")")
            ranges = tuple(sorted((v, v) for v in values))
            return Predicate(
                attribute=attribute,
                lo=min(values),
                hi=max(values),
                stream=stream,
                ranges=ranges,
            )
        if token.is_keyword("between"):
            self._advance()
            lo = self._expect_number()
            self._expect_keyword("and")
            hi = self._expect_number()
            if hi < lo:
                raise QuerySyntaxError(
                    f"BETWEEN bounds reversed: {lo} > {hi}", token.position
                )
            return Predicate(attribute=attribute, lo=lo, hi=hi, stream=stream)
        if token.kind == SYMBOL and token.value in ("<", "<=", ">", ">=", "="):
            op = token.value
            self._advance()
            value = self._expect_number()
            if op == "=":
                return Predicate(attribute, value, value, stream)
            if op in ("<", "<="):
                return Predicate(attribute, -math.inf, value, stream)
            return Predicate(attribute, value, math.inf, stream)
        raise QuerySyntaxError(
            f"expected BETWEEN or a comparison, found {token.value!r}",
            token.position,
        )

    def _window(self) -> WindowClause:
        self._expect_keyword("window")
        seconds = self._expect_number()
        if seconds <= 0:
            raise QuerySyntaxError("WINDOW length must be positive")
        group_by = None
        if self.current.is_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            group_by = self._expect_name("grouping attribute")
        return WindowClause(seconds=seconds, group_by=group_by)


def parse_query(text: str) -> QueryAst:
    """Parse a query string into an AST.

    Raises:
        QuerySyntaxError: On any lexical or grammatical problem.
    """
    return _Parser(tokenize(text)).parse()
