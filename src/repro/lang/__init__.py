"""A small continuous-query language for the portal.

The paper's portal serves "a huge number of clients" who submit
continuous queries; this package gives those clients a declarative
text syntax that compiles to :class:`~repro.query.spec.QuerySpec` — the
loosely-coupled currency entities exchange:

    SELECT AVG(price) FROM exchange-0.trades
    WHERE price BETWEEN 100 AND 400 AND symbol BETWEEN 0 AND 19
    WINDOW 10 GROUP BY symbol

    SELECT * FROM exchange-0.trades JOIN exchange-1.trades
    ON symbol WITHIN 2
    WHERE exchange-0.trades.symbol BETWEEN 0 AND 9

Grammar (informal):

    query     := SELECT projection FROM source [join] [where] [window]
    projection:= '*' | item (',' item)*     item := NAME | AGG '(' NAME ')'
    join      := JOIN stream ON NAME [WITHIN number]
    where     := WHERE predicate (AND predicate)*
    predicate := [stream '.'] NAME BETWEEN number AND number
               | [stream '.'] NAME cmp number          cmp := < <= > >=
    window    := WINDOW number [GROUP BY NAME]
"""

from repro.lang.compiler import compile_query
from repro.lang.errors import QuerySyntaxError
from repro.lang.parser import parse_query
from repro.lang.tokens import Token, tokenize

__all__ = [
    "compile_query",
    "parse_query",
    "tokenize",
    "Token",
    "QuerySyntaxError",
]
