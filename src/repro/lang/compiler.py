"""Compile parsed query ASTs into :class:`QuerySpec` objects.

Compilation validates names against the catalog, clips open comparison
bounds to attribute domains, intersects repeated constraints, and maps
the SELECT/WINDOW clauses onto the spec's aggregate/projection fields.
"""

from __future__ import annotations

from repro.interest.predicates import Interval, IntervalSet, StreamInterest
from repro.lang.errors import QuerySyntaxError
from repro.lang.parser import Predicate, parse_query
from repro.query.spec import AggregateSpec, JoinSpec, QuerySpec
from repro.streams.catalog import StreamCatalog, UnknownStreamError


def _check_stream(catalog: StreamCatalog, stream_id: str):
    try:
        return catalog.schema(stream_id)
    except UnknownStreamError:
        raise QuerySyntaxError(f"unknown stream {stream_id!r}") from None


def _check_attribute(schema, name: str) -> None:
    if name not in schema.attribute_names():
        raise QuerySyntaxError(
            f"stream {schema.stream_id!r} has no attribute {name!r}"
        )


def _interest_for(
    stream_id: str,
    predicates: list[Predicate],
    catalog: StreamCatalog,
) -> StreamInterest:
    schema = _check_stream(catalog, stream_id)
    constraints: dict[str, IntervalSet] = {}
    for predicate in predicates:
        _check_attribute(schema, predicate.attribute)
        attr = schema.attribute(predicate.attribute)
        intervals = []
        for raw_lo, raw_hi in predicate.interval_bounds():
            lo = max(raw_lo, attr.lo)
            hi = min(raw_hi, attr.hi)
            if hi >= lo:
                intervals.append(Interval(lo, hi))
        if not intervals:
            raise QuerySyntaxError(
                f"predicate on {predicate.attribute!r} is empty after "
                f"clipping to the attribute domain [{attr.lo}, {attr.hi}]"
            )
        ivs = IntervalSet(intervals)
        if predicate.attribute in constraints:
            constraints[predicate.attribute] = constraints[
                predicate.attribute
            ].intersect(ivs)
            if constraints[predicate.attribute].is_empty:
                raise QuerySyntaxError(
                    f"conflicting predicates on {predicate.attribute!r}"
                )
        else:
            constraints[predicate.attribute] = ivs
    return StreamInterest(stream_id=stream_id, constraints=constraints)


def compile_query(
    text: str,
    catalog: StreamCatalog,
    *,
    query_id: str,
    cost_multiplier: float = 1.0,
    client_x: float = 0.5,
    client_y: float = 0.5,
) -> QuerySpec:
    """Compile query text into an executable :class:`QuerySpec`.

    Raises:
        QuerySyntaxError: On syntax errors or names missing from the
            catalog.
    """
    ast = parse_query(text)
    streams = [ast.stream]
    if ast.join is not None:
        if ast.join.stream == ast.stream:
            raise QuerySyntaxError("cannot join a stream with itself")
        streams.append(ast.join.stream)

    # distribute predicates onto streams
    per_stream: dict[str, list[Predicate]] = {s: [] for s in streams}
    for predicate in ast.predicates:
        if predicate.stream is not None:
            if predicate.stream not in per_stream:
                raise QuerySyntaxError(
                    f"predicate references {predicate.stream!r}, which is "
                    "not a FROM/JOIN stream"
                )
            per_stream[predicate.stream].append(predicate)
        elif ast.join is not None:
            # with two input streams, unqualified predicates apply to
            # both (each stream keeps only attributes it has)
            for stream_id in streams:
                schema = _check_stream(catalog, stream_id)
                if predicate.attribute in schema.attribute_names():
                    per_stream[stream_id].append(predicate)
        else:
            per_stream[ast.stream].append(predicate)

    interests = tuple(
        _interest_for(stream_id, per_stream[stream_id], catalog)
        for stream_id in streams
    )

    # SELECT clause -> aggregate + projection
    aggregates = [item for item in ast.items if item.aggregate is not None]
    plain = [item.attribute for item in ast.items if item.aggregate is None]
    if len(aggregates) > 1:
        raise QuerySyntaxError("at most one aggregate per query")
    aggregate: AggregateSpec | None = None
    if aggregates:
        if ast.window is None:
            raise QuerySyntaxError("an aggregate requires a WINDOW clause")
        if ast.join is not None:
            raise QuerySyntaxError(
                "aggregates over joins are not supported; aggregate one "
                "stream or join without aggregation"
            )
        item = aggregates[0]
        schema = _check_stream(catalog, ast.stream)
        _check_attribute(schema, item.attribute)
        group_by = ast.window.group_by
        if group_by is not None:
            _check_attribute(schema, group_by)
        aggregate = AggregateSpec(
            attribute=item.attribute,
            fn=item.aggregate,
            window=ast.window.seconds,
            group_by=group_by,
        )
        # aggregates emit {fn, window_end, group}; projecting raw names
        # through them would drop everything, so plain items become the
        # projection over aggregate outputs
        project = tuple(plain + [item.aggregate]) if plain else None
    elif ast.window is not None:
        raise QuerySyntaxError("WINDOW without an aggregate in SELECT")
    else:
        project = tuple(plain) if (plain and not ast.select_all) else None

    if ast.join is not None:
        for stream_id in streams:
            schema = _check_stream(catalog, stream_id)
            _check_attribute(schema, ast.join.attribute)

    return QuerySpec(
        query_id=query_id,
        interests=interests,
        join=(
            JoinSpec(attribute=ast.join.attribute, window=ast.join.window)
            if ast.join is not None
            else None
        ),
        aggregate=aggregate,
        project=project,
        cost_multiplier=cost_multiplier,
        client_x=client_x,
        client_y=client_y,
    )
