"""The control plane's discrete-event leg.

Drives the same churn script and the same :class:`~repro.control.
admission.AdmissionPolicy` through the simulator's online submission
path (:meth:`~repro.core.system.FederatedSystem.submit_one` /
:meth:`~repro.core.system.FederatedSystem.withdraw`).  The simulator
has no live fragments to protect, so registrations redeploy entities
directly — but the admission decisions, queueing, and latency
accounting are byte-for-byte the live plane's, which is what the
cross-leg tests compare.
"""

from __future__ import annotations

from repro.control.admission import (
    ADMIT,
    DEFER,
    AdmissionPolicy,
    entity_loads,
)
from repro.control.events import REGISTER, ControlEvent
from repro.core.report import RunReport
from repro.core.system import FederatedSystem, SystemConfig
from repro.monitoring.control import ControlMetrics, ControlReport
from repro.query.spec import QuerySpec
from repro.streams.catalog import StreamCatalog


def run_control_sim(
    catalog: StreamCatalog,
    config: SystemConfig,
    queries: list[QuerySpec],
    events: list[ControlEvent] | tuple[ControlEvent, ...],
    duration: float,
    *,
    retry_period: float = 0.25,
) -> tuple[RunReport, ControlReport]:
    """Simulate a base workload plus a churn script under admission
    control; returns the run report and the control report."""
    system = FederatedSystem(catalog, config)
    if queries:
        system.submit(queries)
    policy = AdmissionPolicy(
        queue_limit=config.admission_queue_limit,
        imbalance_threshold=config.admission_imbalance_threshold,
    )
    metrics = ControlMetrics()

    def admit(spec: QuerySpec, arrived_at: float) -> None:
        system.submit_one(spec)
        metrics.record_admitted(system.sim.now - arrived_at)

    def retry() -> None:
        if policy.queue:
            loads = entity_loads(system)
            for pending in policy.drain_admissible(loads, catalog):
                admit(pending.spec, pending.arrived_at)
        if policy.queue:
            system.sim.schedule(retry_period, retry)

    def handle(event: ControlEvent) -> None:
        if event.action == REGISTER:
            metrics.record_arrival()
            verdict = policy.decide(
                event.spec.estimated_load(catalog), entity_loads(system)
            )
            if verdict == ADMIT:
                admit(event.spec, event.at)
            elif verdict == DEFER:
                was_empty = not policy.queue
                policy.park(event.spec, event.at)
                metrics.record_deferred(len(policy.queue))
                if was_empty:
                    system.sim.schedule(retry_period, retry)
            else:
                metrics.record_rejected()
        else:
            metrics.record_departure()
            for pending in list(policy.queue):
                if pending.spec.query_id == event.query_id:
                    policy.queue.remove(pending)
                    metrics.record_torn_down()
                    return
            try:
                system.withdraw(event.query_id)
            except KeyError:
                return  # rejected earlier or never existed
            metrics.record_torn_down()
            retry()  # the departure freed capacity

    for event in sorted(events, key=lambda e: (e.at, e.subject)):
        system.sim.schedule_at(event.at, lambda e=event: handle(e))
    report = system.run(duration)
    control = metrics.build_report(stranded_in_queue=len(policy.queue))
    return report, control
