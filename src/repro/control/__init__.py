"""Multi-tenant control plane over the adaptive live runtime.

The paper's federation is long-running: queries arrive and leave while
the system executes (§3.2.2 "arrival or leave of queries"), and the
entities serve many independent clients at once.  This package adds the
operational layer that makes that sustainable:

* :mod:`repro.control.admission` — cost-model admission control.  An
  arrival whose predicted load would violate the §3.2.2 balance
  constraint waits in a bounded queue (or is rejected when the queue is
  full) instead of overloading an entity.
* :mod:`repro.control.quotas` — per-tenant weighted-fair token buckets
  enforced at the delegate-routing intake, so one tenant's traffic
  spike cannot starve colocated tenants.
* :mod:`repro.control.runtime` — :class:`ControlRuntime`, the live
  runtime that executes a scripted churn of registrations and
  teardowns through the coordinator tree, reusing the migration
  protocol (pause → drain → install/detach → resume) so arrivals and
  departures never corrupt colocated queries.
* :mod:`repro.control.simulate` — the same admission policy driving
  the discrete-event simulator's online submission path.
"""

from repro.control.admission import AdmissionPolicy, predicted_imbalance
from repro.control.events import ControlEvent
from repro.control.quotas import TenantThrottle, throttle_from_config
from repro.control.runtime import (
    ControlChaosRuntime,
    ControlRuntime,
    ControlSettings,
)
from repro.control.simulate import run_control_sim

__all__ = [
    "AdmissionPolicy",
    "ControlChaosRuntime",
    "ControlEvent",
    "ControlRuntime",
    "ControlSettings",
    "TenantThrottle",
    "predicted_imbalance",
    "run_control_sim",
    "throttle_from_config",
]
