"""Cost-model admission control for dynamic query arrivals.

The §3.2.2 allocation keeps every entity's load within a bounded factor
of the ideal (total/entities).  A long-running federation must defend
that invariant against arrivals, not just establish it at submission:
an arrival whose predicted load would push even the *best-case*
placement past the threshold is parked in a bounded queue and retried
as departures free capacity — or rejected outright when the queue is
full (the client gets an immediate answer instead of unbounded
queueing).

The policy is pure (loads in, verdict out), so the same code decides
admissions in the live control plane, the discrete-event simulator, and
the distributed coordinator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.query.spec import QuerySpec

ADMIT = "admit"
DEFER = "defer"
REJECT = "reject"


def predicted_imbalance(loads: dict[str, float], new_load: float) -> float:
    """Max/ideal entity-load ratio after best-case placement.

    Optimistically places the arrival on the least-loaded entity; if
    even that violates the balance constraint, no placement can satisfy
    it and the arrival must wait.
    """
    if not loads:
        return 1.0
    values = list(loads.values())
    total = sum(values) + new_load
    ideal = total / len(values)
    if ideal <= 0:
        return 1.0
    peak = max(max(values), min(values) + new_load)
    return peak / ideal


def entity_loads(planner) -> dict[str, float]:
    """Predicted CPU load per entity from the hosted queries' cost
    model (the vertex weights of §3.2.2)."""
    catalog = planner.catalog
    return {
        entity_id: sum(
            hosted.spec.estimated_load(catalog)
            for hosted in entity.hosted.values()
        )
        for entity_id, entity in planner.entities.items()
    }


@dataclass
class PendingAdmission:
    """One arrival waiting in the admission queue."""

    spec: QuerySpec
    arrived_at: float


@dataclass
class AdmissionPolicy:
    """Balance-constrained admission with a bounded wait queue.

    Attributes:
        queue_limit: Deferred arrivals held at most (0 disables
            admission control entirely: everything admits immediately).
        imbalance_threshold: Max predicted max/ideal load ratio an
            admission may cause.
    """

    queue_limit: int = 0
    imbalance_threshold: float = 1.5
    queue: deque = field(default_factory=deque)

    @property
    def enabled(self) -> bool:
        return self.queue_limit > 0

    def decide(self, new_load: float, loads: dict[str, float]) -> str:
        """ADMIT, DEFER (queue has room), or REJECT (queue full)."""
        if not self.enabled:
            return ADMIT
        if predicted_imbalance(loads, new_load) <= self.imbalance_threshold:
            return ADMIT
        return DEFER if len(self.queue) < self.queue_limit else REJECT

    # ------------------------------------------------------------------
    def park(self, spec: QuerySpec, now: float) -> None:
        """Queue one deferred arrival (caller checked `decide`)."""
        self.queue.append(PendingAdmission(spec, now))

    def drain_admissible(
        self, loads: dict[str, float], catalog
    ) -> list[PendingAdmission]:
        """Pop every queued arrival the balance constraint now allows.

        FIFO with head-of-line blocking: admissions must not reorder a
        tenant's arrivals, and skipping the head in favour of a lighter
        later query would let heavy queries starve at the head forever
        without the caller noticing.  Each admission's load is added to
        the running picture so one drain round cannot overshoot.
        """
        admitted: list[PendingAdmission] = []
        working = dict(loads)
        while self.queue:
            head = self.queue[0]
            load = head.spec.estimated_load(catalog)
            if (
                predicted_imbalance(working, load)
                > self.imbalance_threshold
            ):
                break
            self.queue.popleft()
            admitted.append(head)
            # best-case bookkeeping: charge the least-loaded entity
            lightest = min(working, key=working.get)
            working[lightest] += load
            loads[lightest] = working[lightest]
        return admitted
