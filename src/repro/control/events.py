"""Scripted churn: timed register/teardown events for a control run.

A churn script is data (not callbacks) so the same sequence can drive
all three legs — the live control plane, the discrete-event simulator,
and (as pre-start spec deltas) the distributed coordinator — and so
chaos runs can replay it deterministically under crash injection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.spec import QuerySpec

REGISTER = "register"
TEARDOWN = "teardown"


@dataclass(frozen=True)
class ControlEvent:
    """One lifecycle event at a virtual time.

    Attributes:
        at: Virtual seconds into the run.
        action: ``"register"`` (spec required) or ``"teardown"``
            (query_id required).
        spec: The arriving query, for registrations.
        query_id: The departing query, for teardowns.
    """

    at: float
    action: str
    spec: QuerySpec | None = None
    query_id: str | None = None

    def __post_init__(self) -> None:
        if self.action == REGISTER:
            if self.spec is None:
                raise ValueError("register events need a spec")
        elif self.action == TEARDOWN:
            if self.query_id is None:
                raise ValueError("teardown events need a query_id")
        else:
            raise ValueError(f"unknown control action {self.action!r}")
        if self.at < 0:
            raise ValueError("event time must be >= 0")

    @property
    def subject(self) -> str:
        """The query id the event concerns."""
        return self.spec.query_id if self.spec is not None else self.query_id
