"""The live multi-tenant control plane.

:class:`ControlRuntime` extends the adaptive runtime with a long-lived
control task that walks a scripted churn of query registrations and
teardowns (§3.2.2 "arrival or leave of queries") against the *running*
federation:

* **arrivals** route through the coordinator tree
  (:meth:`~repro.core.system.FederatedSystem.adopt_query`), pass the
  cost-model admission check, and are wired into the dataflow under the
  migration protocol's pause → drain → install → resume quiescence —
  so a registration can never corrupt a colocated query's in-flight
  state;
* **departures** detach under the same quiescence
  (:meth:`~repro.live.adaptation.QueryMigrator.retire_query`),
  shrinking shared-computation groups around the leaver without
  disturbing the remaining members;
* **per-tenant fair quotas** (weighted-fair token buckets from
  :mod:`repro.control.quotas`) are installed on every LAN processor's
  delegate-routing intake.

Several events due at the same wakeup share one quiesce window, so a
churn storm costs one drain, not one per query.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace

from repro.control.admission import (
    ADMIT,
    DEFER,
    AdmissionPolicy,
    entity_loads,
)
from repro.control.events import REGISTER, ControlEvent
from repro.control.quotas import throttle_from_config
from repro.live.adaptation import (
    AdaptationSettings,
    AdaptiveRuntime,
    QueryMigrator,
)
from repro.live.chaos import ChaosRuntime, ChaosSettings
from repro.live.metrics import LiveReport
from repro.live.runtime import LiveDataflow, LiveSettings
from repro.monitoring.control import ControlMetrics
from repro.query.spec import QuerySpec


@dataclass(frozen=True)
class ControlSettings:
    """Knobs of the control plane's event loop.

    Attributes:
        retry_period: Virtual seconds between retries of the admission
            queue while arrivals are parked (departures also trigger an
            immediate retry inside their own quiesce window).
    """

    retry_period: float = 0.25

    def __post_init__(self) -> None:
        if self.retry_period <= 0:
            raise ValueError("retry_period must be positive")


class ControlPlane:
    """The control task: admission, registration, teardown, quotas."""

    def __init__(
        self,
        runtime: "ControlRuntime",
        flow: LiveDataflow,
        migrator: QueryMigrator,
        events: list[ControlEvent],
        settings: ControlSettings,
        metrics: ControlMetrics,
    ) -> None:
        self.runtime = runtime
        self.flow = flow
        self.migrator = migrator
        self.events = events
        self.settings = settings
        self.metrics = metrics
        self.admission = runtime.admission
        self.throttle = runtime.throttle

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Process churn events until script and queue are exhausted."""
        clock = self.flow.clock
        index = 0
        while index < len(self.events) or self.admission.queue:
            targets = []
            if index < len(self.events):
                targets.append(self.events[index].at)
            if self.admission.queue:
                targets.append(clock.now + self.settings.retry_period)
            await clock.wait_until(min(targets))
            now = clock.now
            due: list[ControlEvent] = []
            while index < len(self.events) and self.events[index].at <= now:
                due.append(self.events[index])
                index += 1
            await self._tick(due, now)

    # ------------------------------------------------------------------
    async def _tick(self, due: list[ControlEvent], now: float) -> None:
        """Decide admissions, then apply all changes in one window."""
        planner = self.runtime.planner
        catalog = planner.catalog
        to_register: list[tuple[QuerySpec, float]] = []
        to_teardown: list[str] = []
        for event in due:
            if event.action == REGISTER:
                self.metrics.record_arrival()
                self.runtime.note_tenant(event.spec)
                verdict = self.admission.decide(
                    event.spec.estimated_load(catalog),
                    entity_loads(planner),
                )
                if verdict == ADMIT:
                    to_register.append((event.spec, event.at))
                elif verdict == DEFER:
                    self.admission.park(event.spec, event.at)
                    self.metrics.record_deferred(
                        len(self.admission.queue)
                    )
                else:
                    self.metrics.record_rejected()
            else:
                self.metrics.record_departure()
                if self._cancel_queued(event.query_id):
                    self.metrics.record_torn_down()
                else:
                    to_teardown.append(event.query_id)
        if not due and self.admission.queue:
            # Periodic retry wakeup: admission decisions are pure
            # planner reads, so probe the queue before paying for a
            # quiesce window.
            loads = entity_loads(planner)
            for pending in self.admission.drain_admissible(
                loads, catalog
            ):
                to_register.append((pending.spec, pending.arrived_at))
        if not (to_register or to_teardown):
            return
        await self._window(to_register, to_teardown, now)

    def _cancel_queued(self, query_id: str) -> bool:
        """Tear down an arrival that never left the admission queue."""
        for pending in self.admission.queue:
            if pending.spec.query_id == query_id:
                self.admission.queue.remove(pending)
                return True
        return False

    # ------------------------------------------------------------------
    async def _window(
        self,
        to_register: list[tuple[QuerySpec, float]],
        to_teardown: list[str],
        now: float,
    ) -> None:
        """One pause → drain → apply → resume batch."""
        planner = self.runtime.planner
        gate = self.runtime.gate
        touched: set[str] = set()
        gate.close()
        try:
            await self.migrator.quiesce()
            for query_id in sorted(to_teardown):
                entity_id = planner.allocation_result.assignment.get(
                    query_id
                )
                if entity_id is None:
                    continue  # unknown or already gone: teardown is moot
                hosted = planner.entities[entity_id].hosted.get(query_id)
                if hosted is not None:
                    if self.throttle is not None and hosted.fragments:
                        self.throttle.unbind(
                            hosted.fragments[0].fragment_id
                        )
                    self.migrator.retire_query(entity_id, hosted)
                planner.drop_query(query_id)
                touched.add(entity_id)
                self.metrics.record_torn_down()
            if to_teardown:
                # departures just freed capacity: retry parked arrivals
                # inside the same window
                loads = entity_loads(planner)
                for pending in self.admission.drain_admissible(
                    loads, planner.catalog
                ):
                    to_register.append(
                        (pending.spec, pending.arrived_at)
                    )
            for spec, arrived in to_register:
                entity_id = planner.adopt_query(spec)
                hosted = planner.entities[entity_id].hosted[spec.query_id]
                self.migrator.register_query(entity_id, hosted)
                if self.throttle is not None:
                    self.throttle.bind(
                        hosted.fragments[0].fragment_id, spec.tenant
                    )
                touched.add(entity_id)
                self.metrics.record_admitted(now - arrived)
            if self.runtime.config.shared_execution:
                for entity_id in sorted(touched):
                    self.migrator.reshare(entity_id)
            if touched:
                self.migrator.refresh_trees()
        finally:
            gate.open()
        self.metrics.record_window()


class ControlRuntime(AdaptiveRuntime):
    """An :class:`AdaptiveRuntime` with the multi-tenant control plane.

    Admission and quota knobs come from :class:`~repro.core.system.
    SystemConfig` (so all three execution legs read one configuration);
    the churn script is per-run data.
    """

    def __init__(
        self,
        catalog,
        config,
        settings: LiveSettings | None = None,
        adaptation: AdaptationSettings | None = None,
        control: ControlSettings | None = None,
        *,
        events: list[ControlEvent] | tuple[ControlEvent, ...] = (),
    ) -> None:
        super().__init__(catalog, config, settings, adaptation)
        self.control_settings = control or ControlSettings()
        self.events = sorted(events, key=lambda e: (e.at, e.subject))
        self.control_metrics = ControlMetrics()
        self.throttle = throttle_from_config(config)
        self.admission = AdmissionPolicy(
            queue_limit=config.admission_queue_limit,
            imbalance_threshold=config.admission_imbalance_threshold,
        )
        self.plane: ControlPlane | None = None
        self._tenant_of: dict[str, str] = {}
        for event in self.events:
            if event.spec is not None:
                self.note_tenant(event.spec)

    # ------------------------------------------------------------------
    def note_tenant(self, spec: QuerySpec) -> None:
        """Remember a query's owner for per-tenant delivery accounting."""
        self._tenant_of[spec.query_id] = spec.tenant

    def submit(self, queries: list[QuerySpec]) -> None:
        super().submit(queries)
        for query in queries:
            self.note_tenant(query)

    # ------------------------------------------------------------------
    def _build_dataflow(self, traces) -> LiveDataflow:
        flow = super()._build_dataflow(traces)
        if self.throttle is not None:
            for task in flow.processors.values():
                task.throttle = self.throttle
            for entity in self.planner.entities.values():
                for hosted in entity.hosted.values():
                    # Shared prefix heads have no single owner to
                    # charge; their members' intake is unthrottled.
                    if hosted.shared_group is None and hosted.fragments:
                        self.throttle.bind(
                            hosted.fragments[0].fragment_id,
                            hosted.spec.tenant,
                        )
        return flow

    async def _start_extras(self, flow: LiveDataflow) -> list[asyncio.Task]:
        extras = await super()._start_extras(flow)
        self.plane = ControlPlane(
            self,
            flow,
            self.controller.migrator,
            self.events,
            self.control_settings,
            self.control_metrics,
        )
        extras.append(
            asyncio.create_task(self.plane.run(), name="live:control")
        )
        return extras

    def _finish_report(
        self, report: LiveReport, flow: LiveDataflow
    ) -> LiveReport:
        report = super()._finish_report(report, flow)
        delivered: dict[str, int] = {}
        for query_id, tuples in self.metrics.results_by_query.items():
            tenant = self._tenant_of.get(query_id)
            if tenant is not None:
                delivered[tenant] = delivered.get(tenant, 0) + len(tuples)
        control = self.control_metrics.build_report(
            shed_by_tenant=(
                dict(self.throttle.shed_by_tenant)
                if self.throttle is not None
                else {}
            ),
            delivered_by_tenant=delivered,
            stranded_in_queue=len(self.admission.queue),
        )
        return replace(report, control=control)


class ControlChaosRuntime(ControlRuntime, ChaosRuntime):
    """The control plane under the chaos harness's virtual clock.

    Cooperative MRO: control plane → adaptation loop → chaos/recovery →
    base dataflow.  The chaos fault script arrives via ``script`` (the
    churn script stays in ``events``); both run on the same virtual
    timeline, which is what lets the churn chaos test interleave
    registrations, teardowns, and crashes deterministically.
    """

    def __init__(
        self,
        catalog,
        config,
        settings: LiveSettings | None = None,
        adaptation: AdaptationSettings | None = None,
        control: ControlSettings | None = None,
        *,
        events: list[ControlEvent] | tuple[ControlEvent, ...] = (),
        script=None,
        chaos: ChaosSettings | None = None,
    ) -> None:
        super().__init__(
            catalog, config, settings, adaptation, control, events=events
        )
        # ChaosRuntime.__init__ ran mid-chain with defaults; install the
        # caller's fault script and settings over them.
        self.script = sorted(script or [])
        if chaos is not None:
            self.chaos_settings = chaos
