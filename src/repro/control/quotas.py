"""Per-tenant weighted-fair intake quotas (token buckets).

Enforcement happens at the delegate-routing intake of the LAN
processors — the point where a raw stream tuple is about to fan out to
one query's head fragment.  That placement has two consequences the
control plane wants:

* dissemination upstream is untouched (a tuple shed for tenant A still
  reaches tenant B's queries on the same stream), and
* shedding is charged to the *query's owner*, not to the stream, so a
  single tenant subscribing a 10× hot stream cannot starve colocated
  tenants of processor time.

Each tenant holds one token bucket refilled in virtual time at a rate
proportional to its weight's share of the federation-wide budget
(``SystemConfig.tenant_quota_rate``).  Buckets are virtual-clock
driven, so as-fast-as-possible replays and scaled runs shed the same
tuples.
"""

from __future__ import annotations

from repro.streams.tuples import StreamTuple


class _Bucket:
    """One tenant's token bucket (virtual-time refill)."""

    __slots__ = ("rate", "capacity", "tokens", "last")

    def __init__(self, rate: float, capacity: float) -> None:
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.last = 0.0

    def take(self, wanted: int, now: float) -> int:
        if now > self.last:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.last) * self.rate
            )
            self.last = now
        granted = min(wanted, int(self.tokens))
        self.tokens -= granted
        return granted


class TenantThrottle:
    """Weighted-fair token buckets keyed by head-fragment id.

    The live wiring registers each standalone query's head fragment
    under its owning tenant (:meth:`bind`); shared prefix fragments are
    deliberately never bound — a shared fragment serves several queries
    (possibly of several tenants), so its intake has no single owner to
    charge.  Unbound fragments pass through untouched.
    """

    def __init__(
        self,
        total_rate: float,
        weights: dict[str, float],
        *,
        burst_seconds: float = 0.25,
    ) -> None:
        if total_rate <= 0:
            raise ValueError("total_rate must be positive")
        if not weights:
            raise ValueError("need at least one tenant weight")
        total_weight = sum(weights.values())
        self._buckets: dict[str, _Bucket] = {}
        for tenant, weight in weights.items():
            rate = total_rate * weight / total_weight
            capacity = max(1.0, rate * burst_seconds)
            self._buckets[tenant] = _Bucket(rate, capacity)
        self._tenant_of: dict[str, str] = {}
        self.admitted_by_tenant: dict[str, int] = {
            tenant: 0 for tenant in weights
        }
        self.shed_by_tenant: dict[str, int] = {tenant: 0 for tenant in weights}

    # ------------------------------------------------------------------
    def bind(self, fragment_id: str, tenant: str) -> None:
        """Charge intake through ``fragment_id`` to ``tenant``'s bucket.

        Tenants without a configured weight are not throttled (binding
        is a no-op), matching the config contract: quotas apply to the
        tenants named in ``tenant_weights``.
        """
        if tenant in self._buckets:
            self._tenant_of[fragment_id] = tenant

    def unbind(self, fragment_id: str) -> None:
        """Stop charging a (torn down or migrated) head fragment."""
        self._tenant_of.pop(fragment_id, None)

    def rebind(self, old_fragment_id: str, new_fragment_id: str) -> None:
        """Carry a binding across a fragment rename (migrations)."""
        tenant = self._tenant_of.pop(old_fragment_id, None)
        if tenant is not None:
            self._tenant_of[new_fragment_id] = tenant

    # ------------------------------------------------------------------
    def admit(
        self, fragment_id: str, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """The prefix of ``batch`` the tenant's bucket can pay for.

        Shedding the suffix (rather than sampling) keeps per-query
        tuple order intact, which the window operators rely on.
        """
        tenant = self._tenant_of.get(fragment_id)
        if tenant is None:
            return batch
        granted = self._buckets[tenant].take(len(batch), now)
        self.admitted_by_tenant[tenant] += granted
        if granted == len(batch):
            return batch
        self.shed_by_tenant[tenant] += len(batch) - granted
        return batch[:granted]

    # ------------------------------------------------------------------
    @property
    def total_shed(self) -> int:
        return sum(self.shed_by_tenant.values())


def throttle_from_config(config) -> TenantThrottle | None:
    """Build the federation's throttle from ``SystemConfig`` knobs
    (``None`` when quotas are disabled)."""
    if config.tenant_quota_rate is None or not config.tenant_weights:
        return None
    return TenantThrottle(
        config.tenant_quota_rate, dict(config.tenant_weights)
    )
