"""Named end-to-end scenarios: catalog + workload in one object."""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.generator import QueryWorkload, WorkloadConfig, generate_workload
from repro.streams.catalog import StreamCatalog, network_catalog, stock_catalog


@dataclass(frozen=True)
class Scenario:
    """A reproducible workload bundle."""

    name: str
    catalog: StreamCatalog
    workload: QueryWorkload

    @property
    def queries(self):
        """The scenario's query specs."""
        return self.workload.queries


def financial_scenario(
    *,
    exchanges: int = 2,
    query_count: int = 200,
    rate: float = 200.0,
    hot_fraction: float = 0.7,
    join_fraction: float = 0.1,
    seed: int = 0,
) -> Scenario:
    """Stock-market monitoring: Zipf-hot symbols, clustered interests."""
    catalog = stock_catalog(exchanges=exchanges, rate=rate)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=query_count,
            hot_fraction=hot_fraction,
            join_fraction=join_fraction,
        ),
        seed=seed,
    )
    return Scenario(name="financial", catalog=catalog, workload=workload)


def network_monitoring_scenario(
    *,
    monitors: int = 4,
    query_count: int = 200,
    rate: float = 500.0,
    seed: int = 0,
) -> Scenario:
    """Network management: per-prefix flow monitoring queries."""
    catalog = network_catalog(monitors=monitors, rate=rate)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=query_count,
            hot_fraction=0.6,
            join_fraction=0.05,
            aggregate_fraction=0.5,
        ),
        seed=seed,
    )
    return Scenario(name="network", catalog=catalog, workload=workload)
