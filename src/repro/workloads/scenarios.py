"""Named end-to-end scenarios: catalog + workload in one object."""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.generator import QueryWorkload, WorkloadConfig, generate_workload
from repro.streams.catalog import StreamCatalog, network_catalog, stock_catalog


@dataclass(frozen=True)
class Scenario:
    """A reproducible workload bundle."""

    name: str
    catalog: StreamCatalog
    workload: QueryWorkload

    @property
    def queries(self):
        """The scenario's query specs."""
        return self.workload.queries


def financial_scenario(
    *,
    exchanges: int = 2,
    query_count: int = 200,
    rate: float = 200.0,
    hot_fraction: float = 0.7,
    join_fraction: float = 0.1,
    zipf_s: float = 1.1,
    seed: int = 0,
) -> Scenario:
    """Stock-market monitoring: Zipf-hot symbols, clustered interests.

    ``zipf_s`` steepens the symbol popularity curve — the skew knob the
    partitioned-operator experiments turn up to concentrate a stage's
    traffic onto a few hot keys.
    """
    catalog = stock_catalog(exchanges=exchanges, rate=rate, zipf_s=zipf_s)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=query_count,
            hot_fraction=hot_fraction,
            join_fraction=join_fraction,
        ),
        seed=seed,
    )
    return Scenario(name="financial", catalog=catalog, workload=workload)


def network_monitoring_scenario(
    *,
    monitors: int = 4,
    query_count: int = 200,
    rate: float = 500.0,
    seed: int = 0,
) -> Scenario:
    """Network management: per-prefix flow monitoring queries."""
    catalog = network_catalog(monitors=monitors, rate=rate)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=query_count,
            hot_fraction=0.6,
            join_fraction=0.05,
            aggregate_fraction=0.5,
        ),
        seed=seed,
    )
    return Scenario(name="network", catalog=catalog, workload=workload)


def parity_workload(seed: int = 0, *, rate: float = 40.0):
    """The cross-runtime parity workload: stateless selections only.

    Used by the sim/live/distributed parity suites and the distributed
    smoke audit: selection results carry no timestamps, so all three
    execution modes must deliver the *identical* result-tuple set on
    the same seed.  Returns ``(catalog, config, queries)``.
    """
    from repro.core.system import SystemConfig
    from repro.interest.predicates import StreamInterest
    from repro.query.spec import QuerySpec

    catalog = stock_catalog(exchanges=2, rate=rate)
    config = SystemConfig(entity_count=4, processors_per_entity=2, seed=seed)
    ranges = [
        (50.0, 400.0),
        (200.0, 700.0),
        (600.0, 990.0),
        (1.0, 150.0),
        (300.0, 900.0),
        (100.0, 500.0),
    ]
    queries = [
        QuerySpec(
            query_id=f"q{i}",
            interests=(
                StreamInterest.on(
                    f"exchange-{i % 2}.trades", price=(lo, hi)
                ),
            ),
            client_x=0.1 * i,
            client_y=0.9 - 0.1 * i,
        )
        for i, (lo, hi) in enumerate(ranges)
    ]
    return catalog, config, queries


def sharing_workload(
    seed: int = 0,
    *,
    overlap: float = 0.8,
    query_count: int = 10,
    rate: float = 40.0,
    filter_cost_multiplier: float = 1.0,
):
    """The shared-computation workload: controlled fingerprint overlap.

    ``overlap`` is the fraction of queries carrying an *identical*
    leading filter on the hot stream — under ``shared_execution`` those
    colocated queries collapse into one shared prefix fragment, while
    their suffixes (rotating projections) stay private taps.  The
    remaining queries subscribe to disjoint ranges on the second stream
    and never share.  Selection/projection results are timestamp-free,
    so shared and unshared runs (and all three runtimes) must deliver
    the identical result-tuple set per seed.  Returns ``(catalog,
    config, queries)`` with ``config.shared_execution`` enabled.
    """
    from repro.core.system import SystemConfig
    from repro.interest.predicates import StreamInterest
    from repro.query.spec import QuerySpec

    catalog = stock_catalog(exchanges=2, rate=rate)
    config = SystemConfig(
        entity_count=2,
        processors_per_entity=2,
        seed=seed,
        shared_execution=True,
    )
    overlapping = max(0, min(query_count, round(query_count * overlap)))
    suffixes = (None, ("price",), ("price", "symbol"))
    queries = [
        QuerySpec(
            query_id=f"ov{i}",
            interests=(
                StreamInterest.on(
                    "exchange-0.trades", price=(100.0, 600.0)
                ),
            ),
            project=suffixes[i % len(suffixes)],
            cost_multiplier=filter_cost_multiplier,
            client_x=0.1 + 0.05 * i,
            client_y=0.9 - 0.05 * i,
        )
        for i in range(overlapping)
    ] + [
        QuerySpec(
            query_id=f"lone{i}",
            interests=(
                StreamInterest.on(
                    "exchange-1.trades",
                    price=(
                        1.0 + 90.0 * i,
                        80.0 + 90.0 * i,
                    ),
                ),
            ),
            cost_multiplier=filter_cost_multiplier,
            client_x=0.8,
            client_y=0.2 + 0.05 * i,
        )
        for i in range(query_count - overlapping)
    ]
    return catalog, config, queries


def churn_workload(
    seed: int = 0,
    *,
    rate: float = 40.0,
    tenants: int = 3,
    base_queries: int = 4,
    churn_per_minute: float = 120.0,
    duration: float = 5.0,
    warmup: float = 0.5,
    queue_limit: int = 32,
    imbalance_threshold: float = 2.0,
    quota_rate: float | None = None,
    spike_tenant: str | None = None,
    spike_factor: float = 1.0,
):
    """The multi-tenant churn workload: scripted arrivals/departures.

    Generates a deterministic churn script of query registrations and
    teardowns spread over ``[warmup, duration)`` at ``churn_per_minute``
    lifecycle events per virtual minute, round-robined across
    ``tenants`` tenants.  Every registered query is torn down a short,
    seed-derived lifetime later (teardowns past ``duration`` are
    dropped — those queries simply outlive the run).  ``spike_tenant``
    optionally multiplies one tenant's stream rate by ``spike_factor``
    — the E21 fairness scenario where quotas must keep the other
    tenants' delivered throughput within the gate.  Returns
    ``(catalog, config, queries, events)``.
    """
    import random

    from repro.control.events import ControlEvent
    from repro.core.system import SystemConfig
    from repro.interest.predicates import StreamInterest
    from repro.query.spec import QuerySpec
    from repro.streams.schema import Attribute, StreamSchema

    names = [f"tenant-{chr(ord('a') + i)}" for i in range(tenants)]
    catalog = StreamCatalog()
    for i in range(tenants):
        stream_rate = rate * (
            spike_factor
            if spike_tenant is not None and names[i] == spike_tenant
            else 1.0
        )
        catalog.register(
            StreamSchema(
                stream_id=f"exchange-{i}.trades",
                attributes=(
                    Attribute("symbol", 0, 499, "zipf", 1.1),
                    Attribute("price", 1.0, 1000.0),
                    Attribute("volume", 1.0, 10_000.0),
                ),
                tuple_size=48.0,
                rate=stream_rate,
            )
        )
    config = SystemConfig(
        entity_count=4,
        processors_per_entity=2,
        seed=seed,
        admission_queue_limit=queue_limit,
        admission_imbalance_threshold=imbalance_threshold,
        tenant_quota_rate=quota_rate,
        tenant_weights=tuple((name, 1.0) for name in names)
        if quota_rate is not None
        else (),
    )
    rng = random.Random(seed)

    def spec(index: int, tenant_slot: int) -> QuerySpec:
        lo = 20.0 + 90.0 * ((index * 7) % 10)
        return QuerySpec(
            query_id=f"churn{index}",
            interests=(
                StreamInterest.on(
                    f"exchange-{tenant_slot}.trades",
                    price=(lo, lo + 250.0),
                ),
            ),
            tenant=names[tenant_slot],
            client_x=0.05 + 0.09 * (index % 10),
            client_y=0.95 - 0.09 * (index % 10),
        )

    queries = [
        QuerySpec(
            query_id=f"base{i}",
            interests=(
                StreamInterest.on(
                    f"exchange-{i % tenants}.trades",
                    price=(50.0, 800.0),
                ),
            ),
            tenant=names[i % tenants],
            client_x=0.1 + 0.2 * i,
            client_y=0.9 - 0.2 * i,
        )
        for i in range(base_queries)
    ]
    # Each arrival later produces one teardown, so arrivals alone run
    # at half the requested lifecycle-event rate.  Lifetimes fit inside
    # the run (arrivals stop a `tail` before the end) so the script
    # really delivers churn_per_minute lifecycle events per minute.
    arrivals = max(1, round(churn_per_minute / 60.0 * duration / 2.0))
    tail = min(0.5, max(duration - warmup, 0.1) / 4.0)
    window = max(duration - warmup - tail, 0.1)
    events = []
    for i in range(arrivals):
        slot = i % tenants
        at = warmup + window * i / arrivals
        events.append(
            ControlEvent(at=at, action="register", spec=spec(i, slot))
        )
        leave = at + rng.uniform(0.3, 0.95) * tail
        events.append(
            ControlEvent(
                at=leave, action="teardown", query_id=f"churn{i}"
            )
        )
    events.sort(key=lambda e: (e.at, e.subject))
    return catalog, config, queries, events


def partition_workload(
    seed: int = 0,
    *,
    rate: float = 40.0,
    parallelism: int = 4,
    zipf_s: float = 1.3,
    agg_cost: float | None = None,
):
    """The partitioned-operator parity workload: grouped aggregates.

    Per-symbol grouped aggregates over a skewed (Zipf) stock tape are
    the partitionable stage whose results are runtime-independent: the
    aggregate watermark advances on ``created_at`` alone, so sim, live,
    distributed, and partitioned-live runs must deliver the identical
    result-tuple set per seed.  Selection queries ride along so the
    workload also exercises plain chains next to partitioned ones.
    ``agg_cost`` overrides the aggregates' nominal CPU seconds per
    tuple — the E19 benchmark raises it to make the partitioned stage
    CPU-bound.  Returns ``(catalog, config, queries)`` with
    ``config.partition_parallelism`` set to ``parallelism``.
    """
    from repro.core.system import SystemConfig
    from repro.interest.predicates import StreamInterest
    from repro.query.spec import AggregateSpec, QuerySpec

    catalog = stock_catalog(exchanges=2, rate=rate, zipf_s=zipf_s)
    config = SystemConfig(
        entity_count=4,
        processors_per_entity=max(2, parallelism),
        seed=seed,
        partition_parallelism=parallelism,
    )
    queries = [
        QuerySpec(
            query_id=f"agg{i}",
            interests=(
                StreamInterest.on(
                    f"exchange-{i % 2}.trades", price=(50.0, 900.0)
                ),
            ),
            aggregate=AggregateSpec(
                attribute="price",
                fn=("sum", "avg", "max")[i % 3],
                window=0.25,
                group_by="symbol",
                cost=agg_cost,
            ),
            client_x=0.15 * i,
            client_y=0.8 - 0.1 * i,
        )
        for i in range(4)
    ] + [
        QuerySpec(
            query_id=f"sel{i}",
            interests=(
                StreamInterest.on(
                    f"exchange-{i % 2}.trades", price=(lo, hi)
                ),
            ),
            client_x=0.2 + 0.1 * i,
            client_y=0.2 + 0.1 * i,
        )
        for i, (lo, hi) in enumerate([(100.0, 400.0), (500.0, 950.0)])
    ]
    return catalog, config, queries
