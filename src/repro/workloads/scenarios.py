"""Named end-to-end scenarios: catalog + workload in one object."""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.generator import QueryWorkload, WorkloadConfig, generate_workload
from repro.streams.catalog import StreamCatalog, network_catalog, stock_catalog


@dataclass(frozen=True)
class Scenario:
    """A reproducible workload bundle."""

    name: str
    catalog: StreamCatalog
    workload: QueryWorkload

    @property
    def queries(self):
        """The scenario's query specs."""
        return self.workload.queries


def financial_scenario(
    *,
    exchanges: int = 2,
    query_count: int = 200,
    rate: float = 200.0,
    hot_fraction: float = 0.7,
    join_fraction: float = 0.1,
    seed: int = 0,
) -> Scenario:
    """Stock-market monitoring: Zipf-hot symbols, clustered interests."""
    catalog = stock_catalog(exchanges=exchanges, rate=rate)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=query_count,
            hot_fraction=hot_fraction,
            join_fraction=join_fraction,
        ),
        seed=seed,
    )
    return Scenario(name="financial", catalog=catalog, workload=workload)


def network_monitoring_scenario(
    *,
    monitors: int = 4,
    query_count: int = 200,
    rate: float = 500.0,
    seed: int = 0,
) -> Scenario:
    """Network management: per-prefix flow monitoring queries."""
    catalog = network_catalog(monitors=monitors, rate=rate)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=query_count,
            hot_fraction=0.6,
            join_fraction=0.05,
            aggregate_fraction=0.5,
        ),
        seed=seed,
    )
    return Scenario(name="network", catalog=catalog, workload=workload)


def parity_workload(seed: int = 0, *, rate: float = 40.0):
    """The cross-runtime parity workload: stateless selections only.

    Used by the sim/live/distributed parity suites and the distributed
    smoke audit: selection results carry no timestamps, so all three
    execution modes must deliver the *identical* result-tuple set on
    the same seed.  Returns ``(catalog, config, queries)``.
    """
    from repro.core.system import SystemConfig
    from repro.interest.predicates import StreamInterest
    from repro.query.spec import QuerySpec

    catalog = stock_catalog(exchanges=2, rate=rate)
    config = SystemConfig(entity_count=4, processors_per_entity=2, seed=seed)
    ranges = [
        (50.0, 400.0),
        (200.0, 700.0),
        (600.0, 990.0),
        (1.0, 150.0),
        (300.0, 900.0),
        (100.0, 500.0),
    ]
    queries = [
        QuerySpec(
            query_id=f"q{i}",
            interests=(
                StreamInterest.on(
                    f"exchange-{i % 2}.trades", price=(lo, hi)
                ),
            ),
            client_x=0.1 * i,
            client_y=0.9 - 0.1 * i,
        )
        for i, (lo, hi) in enumerate(ranges)
    ]
    return catalog, config, queries
