"""Ready-made workload scenarios for examples and benchmarks.

The paper motivates the system with stock tickers and network
management; these scenarios combine a stream catalog, a query workload
with controlled interest overlap, drifting operators whose statistics
change mid-run, and time-varying rate profiles for bursty feeds.
"""

from repro.workloads.drifting import (
    DriftingFilter,
    apply_rate_drift,
    crossfade_rates,
    linear_drift,
    step_drift,
)
from repro.workloads.rates import constant_rate, diurnal, ramp, square_burst
from repro.workloads.scenarios import (
    Scenario,
    churn_workload,
    financial_scenario,
    network_monitoring_scenario,
    parity_workload,
    partition_workload,
    sharing_workload,
)

__all__ = [
    "DriftingFilter",
    "apply_rate_drift",
    "crossfade_rates",
    "step_drift",
    "linear_drift",
    "constant_rate",
    "square_burst",
    "diurnal",
    "ramp",
    "Scenario",
    "churn_workload",
    "financial_scenario",
    "network_monitoring_scenario",
    "parity_workload",
    "partition_workload",
    "sharing_workload",
]
