"""Operators and rate profiles whose behaviour drifts over time.

Runtime adaptation only pays off when "the system is subject to
changes"; the drifting filter makes selectivity a function of virtual
time, so the compile-time optimal operator order stops being optimal
mid-run — the scenario E10 uses to compare static vs adaptive ordering.
The drifting-*rate* helpers do the same to stream volume: a crossfade
sends the load planned for one set of streams to another, so an
allocation computed from the planned rates goes stale mid-run — the
scenario E17 uses to compare static allocation against the live
adaptation loop.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.engine.operators.base import Operator
from repro.streams.catalog import StreamCatalog
from repro.streams.source import StreamSource
from repro.streams.tuples import StreamTuple
from repro.workloads.rates import RateFn, ramp


class DriftingFilter(Operator):
    """A filter whose pass probability is ``probability_fn(time)``.

    The per-tuple keep/drop decision is a deterministic hash of
    ``(name, stream, seq)`` compared against the current probability, so
    runs are reproducible without threading an RNG through the engine.
    """

    def __init__(
        self,
        name: str,
        probability_fn: Callable[[float], float],
        *,
        cost_per_tuple: float = 1e-4,
    ) -> None:
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=0.5
        )
        self.probability_fn = probability_fn

    def _unit_hash(self, tup: StreamTuple) -> float:
        key = f"{self.name}|{tup.stream_id}|{tup.seq}".encode()
        return (zlib.crc32(key) & 0xFFFFFFFF) / 2**32

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        probability = min(1.0, max(0.0, self.probability_fn(now)))
        if self._unit_hash(tup) < probability:
            return [tup]
        return []


def step_drift(
    before: float, after: float, switch_at: float
) -> Callable[[float], float]:
    """A pass-probability that jumps from ``before`` to ``after``."""
    def fn(now: float) -> float:
        return before if now < switch_at else after

    return fn


def linear_drift(
    start: float, end: float, duration: float
) -> Callable[[float], float]:
    """A pass-probability that slides linearly over ``duration`` seconds."""
    def fn(now: float) -> float:
        if duration <= 0:
            return end
        frac = min(1.0, max(0.0, now / duration))
        return start + (end - start) * frac

    return fn


def crossfade_rates(
    catalog: StreamCatalog,
    hot_streams: set[str] | frozenset[str],
    *,
    factor_up: float = 6.0,
    factor_down: float = 0.25,
    duration: float = 2.0,
) -> dict[str, RateFn]:
    """Rate profiles that shift load between stream groups over time.

    Streams in ``hot_streams`` ramp linearly from their catalog rate to
    ``factor_up`` times it over ``duration`` seconds; every other stream
    ramps down to ``factor_down`` times its rate.  The allocation
    computed from the catalog's static rates is correct at ``t = 0`` and
    increasingly wrong after — the drifting-rate workload behind E17.
    """
    if factor_up <= 0 or factor_down <= 0:
        raise ValueError("rate factors must be positive")
    profiles: dict[str, RateFn] = {}
    for stream_id in catalog.stream_ids():
        base = catalog.schema(stream_id).rate
        factor = factor_up if stream_id in hot_streams else factor_down
        profiles[stream_id] = ramp(base, base * factor, duration=duration)
    return profiles


def apply_rate_drift(
    sources: dict[str, StreamSource], profiles: dict[str, RateFn]
) -> int:
    """Install rate profiles on live stream sources (before the trace is
    recorded).  Returns the number of sources affected."""
    applied = 0
    for stream_id, profile in profiles.items():
        source = sources.get(stream_id)
        if source is not None:
            source.rate_fn = profile
            applied += 1
    return applied
