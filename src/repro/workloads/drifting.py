"""Operators whose behaviour drifts over time.

Runtime adaptation only pays off when "the system is subject to
changes"; the drifting filter makes selectivity a function of virtual
time, so the compile-time optimal operator order stops being optimal
mid-run — the scenario E10 uses to compare static vs adaptive ordering.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class DriftingFilter(Operator):
    """A filter whose pass probability is ``probability_fn(time)``.

    The per-tuple keep/drop decision is a deterministic hash of
    ``(name, stream, seq)`` compared against the current probability, so
    runs are reproducible without threading an RNG through the engine.
    """

    def __init__(
        self,
        name: str,
        probability_fn: Callable[[float], float],
        *,
        cost_per_tuple: float = 1e-4,
    ) -> None:
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=0.5
        )
        self.probability_fn = probability_fn

    def _unit_hash(self, tup: StreamTuple) -> float:
        key = f"{self.name}|{tup.stream_id}|{tup.seq}".encode()
        return (zlib.crc32(key) & 0xFFFFFFFF) / 2**32

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        probability = min(1.0, max(0.0, self.probability_fn(now)))
        if self._unit_hash(tup) < probability:
            return [tup]
        return []


def step_drift(
    before: float, after: float, switch_at: float
) -> Callable[[float], float]:
    """A pass-probability that jumps from ``before`` to ``after``."""
    def fn(now: float) -> float:
        return before if now < switch_at else after

    return fn


def linear_drift(
    start: float, end: float, duration: float
) -> Callable[[float], float]:
    """A pass-probability that slides linearly over ``duration`` seconds."""
    def fn(now: float) -> float:
        if duration <= 0:
            return end
        frac = min(1.0, max(0.0, now / duration))
        return start + (end - start) * frac

    return fn
