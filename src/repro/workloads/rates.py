"""Time-varying rate profiles for bursty stream sources.

Market feeds burst at the open, network monitors burst under attack;
these profiles plug into :class:`~repro.streams.source.StreamSource`
via its ``rate_fn`` argument.
"""

from __future__ import annotations

import math
from typing import Callable

RateFn = Callable[[float], float]


def constant_rate(rate: float) -> RateFn:
    """A flat profile (equivalent to the schema's static rate)."""
    def fn(now: float) -> float:
        return rate

    return fn


def square_burst(
    base: float, burst: float, *, period: float = 10.0, duty: float = 0.2
) -> RateFn:
    """``base`` rate with ``burst``-rate windows.

    Each ``period`` opens with a burst lasting ``duty * period`` seconds.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= duty <= 1.0:
        raise ValueError("duty must lie in [0, 1]")

    def fn(now: float) -> float:
        phase = now % period
        return burst if phase < duty * period else base

    return fn


def diurnal(
    mean: float, *, amplitude: float = 0.5, period: float = 60.0
) -> RateFn:
    """A sinusoidal day-cycle: ``mean * (1 + amplitude * sin)``."""
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must lie in [0, 1]")

    def fn(now: float) -> float:
        return mean * (1.0 + amplitude * math.sin(2 * math.pi * now / period))

    return fn


def ramp(start: float, end: float, *, duration: float) -> RateFn:
    """Linear ramp from ``start`` to ``end`` over ``duration`` seconds."""
    if duration <= 0:
        raise ValueError("duration must be positive")

    def fn(now: float) -> float:
        frac = min(1.0, max(0.0, now / duration))
        return start + (end - start) * frac

    return fn
