"""Stream catalogs: the global schema the paper assumes is known.

Section 1 assumes "there is a known global schema of the data".  The
catalog is that schema registry, plus ready-made catalogs for the two
application domains the paper motivates: financial market monitoring and
network management.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.streams.schema import Attribute, StreamSchema


class UnknownStreamError(KeyError):
    """Raised when a stream id is not in the catalog."""


@dataclass
class StreamCatalog:
    """Registry mapping stream ids to schemas."""

    _schemas: dict[str, StreamSchema] = field(default_factory=dict)

    def register(self, schema: StreamSchema) -> StreamSchema:
        """Add a schema; stream ids must be unique."""
        if schema.stream_id in self._schemas:
            raise ValueError(f"stream {schema.stream_id!r} already registered")
        self._schemas[schema.stream_id] = schema
        return schema

    def schema(self, stream_id: str) -> StreamSchema:
        """Look up a schema, raising :class:`UnknownStreamError` if absent."""
        try:
            return self._schemas[stream_id]
        except KeyError as exc:
            raise UnknownStreamError(stream_id) from exc

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self._schemas

    def __len__(self) -> int:
        return len(self._schemas)

    def stream_ids(self) -> list[str]:
        """All registered stream ids, in registration order."""
        return list(self._schemas)

    def schemas(self) -> list[StreamSchema]:
        """All registered schemas, in registration order."""
        return list(self._schemas.values())


def stock_catalog(
    *,
    exchanges: int = 2,
    symbols_per_exchange: int = 500,
    rate: float = 200.0,
    zipf_s: float = 1.1,
) -> StreamCatalog:
    """A stock-ticker catalog: one trade stream per exchange.

    Symbols follow a Zipf popularity distribution (a handful of hot
    tickers dominate the tape), prices and volumes are uniform.  This is
    the "financial market monitoring" workload of the paper's intro.
    """
    catalog = StreamCatalog()
    for i in range(exchanges):
        catalog.register(
            StreamSchema(
                stream_id=f"exchange-{i}.trades",
                attributes=(
                    Attribute(
                        "symbol", 0, symbols_per_exchange - 1, "zipf", zipf_s
                    ),
                    Attribute("price", 1.0, 1000.0),
                    Attribute("volume", 1.0, 10_000.0),
                ),
                tuple_size=48.0,
                rate=rate,
            )
        )
    return catalog


def network_catalog(
    *,
    monitors: int = 4,
    rate: float = 500.0,
) -> StreamCatalog:
    """A network-management catalog: one flow-record stream per monitor.

    Source/destination prefixes are Zipf (traffic concentrates on popular
    prefixes), packet sizes and durations uniform.
    """
    catalog = StreamCatalog()
    for i in range(monitors):
        catalog.register(
            StreamSchema(
                stream_id=f"monitor-{i}.flows",
                attributes=(
                    Attribute("src_prefix", 0, 4095, "zipf", 1.0),
                    Attribute("dst_prefix", 0, 4095, "zipf", 1.0),
                    Attribute("bytes", 40.0, 1_500_000.0),
                    Attribute("duration", 0.001, 3600.0),
                ),
                tuple_size=64.0,
                rate=rate,
            )
        )
    return catalog
