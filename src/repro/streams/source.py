"""Push-based stream sources.

A :class:`StreamSource` owns one schema, draws attribute values from the
schema's declared distributions, and pushes tuples to its subscribers on
the simulator clock.  Inter-arrival times are exponential (Poisson
arrivals) by default, or deterministic at ``1 / rate``.
"""

from __future__ import annotations

from typing import Callable

from repro.simulation.simulator import Simulator
from repro.streams.schema import StreamSchema
from repro.streams.tuples import StreamTuple

Subscriber = Callable[[StreamTuple], None]


class StreamSource:
    """Generates the tuples of one stream.

    Args:
        sim: Owning simulator (provides clock and RNG).
        schema: Stream schema; its ``rate`` drives tuple generation.
        poisson: Exponential inter-arrivals when true, deterministic
            ``1/rate`` gaps otherwise.
        rate_fn: Optional time-varying rate ``f(now) -> tuples/second``
            overriding the schema's constant rate (bursty feeds).  A
            non-positive instantaneous rate pauses emission; the source
            re-checks every ``idle_recheck`` seconds.
    """

    IDLE_RECHECK = 0.25

    def __init__(
        self,
        sim: Simulator,
        schema: StreamSchema,
        *,
        poisson: bool = True,
        rate_fn: Callable[[float], float] | None = None,
    ) -> None:
        self.sim = sim
        self.schema = schema
        self.poisson = poisson
        self.rate_fn = rate_fn
        self.emitted = 0
        self._subscribers: list[Subscriber] = []
        self._running = False
        self._stop: Callable[[], None] | None = None

    @property
    def stream_id(self) -> str:
        """The id of the stream this source produces."""
        return self.schema.stream_id

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register a tuple callback; returns an unsubscribe function."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

        return unsubscribe

    @property
    def subscriber_count(self) -> int:
        """Number of live subscribers."""
        return len(self._subscribers)

    # ------------------------------------------------------------------
    def make_tuple(self) -> StreamTuple:
        """Draw one tuple at the current virtual time (no delivery)."""
        values = {a.name: a.draw(self.sim.rng) for a in self.schema.attributes}
        tup = StreamTuple(
            stream_id=self.schema.stream_id,
            seq=self.emitted,
            created_at=self.sim.now,
            values=values,
            size=self.schema.tuple_size,
        )
        self.emitted += 1
        return tup

    def emit(self) -> StreamTuple:
        """Draw one tuple and push it to every subscriber."""
        tup = self.make_tuple()
        for subscriber in list(self._subscribers):
            subscriber(tup)
        return tup

    def current_rate(self) -> float:
        """The instantaneous emission rate (tuples/second)."""
        if self.rate_fn is not None:
            return max(0.0, self.rate_fn(self.sim.now))
        return self.schema.rate

    def start(self) -> None:
        """Begin pushing tuples at the (possibly varying) rate."""
        if self._running:
            return
        if self.rate_fn is None and self.schema.rate <= 0:
            return
        self._running = True

        def tick(emit_now: bool) -> None:
            if not self._running:
                return
            if emit_now:
                self.emit()
            gap, next_emits = self._next_gap()
            self.sim.schedule(gap, lambda: tick(next_emits))

        gap, emits = self._next_gap()
        self.sim.schedule(gap, lambda: tick(emits))

    def _next_gap(self) -> tuple[float, bool]:
        """``(delay, whether a tuple fires at the end of the delay)``."""
        rate = self.current_rate()
        if rate <= 0:
            return self.IDLE_RECHECK, False
        if self.poisson:
            return self.sim.rng.expovariate(rate), True
        return 1.0 / rate, True

    def stop(self) -> None:
        """Stop generating tuples (pending emissions are abandoned)."""
        self._running = False
