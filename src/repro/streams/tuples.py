"""Stream tuples: the unit of data flowing through the system."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class StreamTuple:
    """One immutable stream element.

    Attributes:
        stream_id: The stream this tuple belongs to.
        seq: Per-stream sequence number assigned by the source.
        created_at: Virtual time the source emitted the tuple; end-to-end
            latency is measured against this.
        values: Attribute name -> value.
        size: Serialised size in bytes (from the schema, possibly reduced
            by projection).
    """

    stream_id: str
    seq: int
    created_at: float
    values: dict[str, float]
    size: float

    def value(self, name: str) -> float:
        """Attribute accessor with a clear error on missing names."""
        try:
            return self.values[name]
        except KeyError as exc:
            raise KeyError(
                f"tuple of {self.stream_id} has no attribute {name!r}"
            ) from exc

    def project(self, names: list[str], size: float | None = None) -> "StreamTuple":
        """Return a copy keeping only ``names`` (optionally resized)."""
        kept = {n: self.values[n] for n in names}
        new_size = size if size is not None else self.size * len(kept) / max(
            1, len(self.values)
        )
        return replace(self, values=kept, size=new_size)

    def relabel(self, stream_id: str) -> "StreamTuple":
        """Return a copy carried under another stream id."""
        return replace(self, stream_id=stream_id)

    def with_values(self, **updates: float) -> "StreamTuple":
        """Return a copy with some attribute values replaced/added."""
        merged = dict(self.values)
        merged.update(updates)
        return replace(self, values=merged)
