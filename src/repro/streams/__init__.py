"""Stream data model: schemas, value distributions, tuples, and sources.

Streams are push-based sequences of tuples with a fixed schema.  Each
attribute carries an explicit value distribution so that predicate
selectivities — and therefore the data-interest overlap weights of the
paper's query graph (Figure 2) — are computable analytically as well as
observable empirically.
"""

from repro.streams.catalog import StreamCatalog, network_catalog, stock_catalog
from repro.streams.schema import Attribute, StreamSchema
from repro.streams.source import StreamSource
from repro.streams.tuples import StreamTuple

__all__ = [
    "Attribute",
    "StreamSchema",
    "StreamTuple",
    "StreamSource",
    "StreamCatalog",
    "stock_catalog",
    "network_catalog",
]
