"""Stream schemas with analytic value distributions.

Every attribute declares its domain and distribution (uniform or Zipf on
an integer domain).  That makes two things possible:

* sources can *draw* values matching the declared distribution, and
* the interest algebra can *compute* the probability mass of an interval
  predicate, which is exactly the selectivity used for the query-graph
  edge weights (bytes/second of shared interest) in §3.2.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache


UNIFORM = "uniform"
ZIPF = "zipf"


@lru_cache(maxsize=256)
def _zipf_table(n: int, s: float) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Per-rank weights and prefix sums for a Zipf(n, s) domain.

    Cached because selectivity is evaluated O(queries^2) times when
    building query graphs; recomputing the table each call would make
    graph construction quadratic in the domain size too.
    """
    weights = tuple(1.0 / (r + 1) ** s for r in range(n))
    prefix = [0.0]
    for w in weights:
        prefix.append(prefix[-1] + w)
    return weights, tuple(prefix)


@dataclass(frozen=True, slots=True)
class Attribute:
    """One stream attribute with an explicit value model.

    Attributes:
        name: Attribute name, unique within its schema.
        lo, hi: Inclusive domain bounds.  Values are real for uniform
            attributes and integral for Zipf attributes.
        distribution: ``"uniform"`` or ``"zipf"``.
        zipf_s: Skew exponent for Zipf attributes (ignored otherwise).
            The value ``lo + r`` has weight ``1 / (r + 1) ** zipf_s``.
    """

    name: str
    lo: float
    hi: float
    distribution: str = UNIFORM
    zipf_s: float = 1.0

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"attribute {self.name}: hi < lo")
        if self.distribution not in (UNIFORM, ZIPF):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.distribution == ZIPF and self.hi - self.lo > 5_000_000:
            raise ValueError("zipf domain too large to normalise")

    # ------------------------------------------------------------------
    def _zipf_weights(self) -> tuple[float, ...]:
        n = int(self.hi - self.lo) + 1
        return _zipf_table(n, self.zipf_s)[0]

    def selectivity(self, lo: float, hi: float) -> float:
        """Probability that a drawn value lands in ``[lo, hi]``."""
        lo = max(lo, self.lo)
        hi = min(hi, self.hi)
        if hi < lo:
            return 0.0
        if self.distribution == UNIFORM:
            width = self.hi - self.lo
            if width == 0:
                return 1.0
            return (hi - lo) / width
        n = int(self.hi - self.lo) + 1
        __, prefix = _zipf_table(n, self.zipf_s)
        first = max(0, math.ceil(lo - self.lo))
        last = min(n - 1, math.floor(hi - self.lo))
        if last < first:
            return 0.0
        return (prefix[last + 1] - prefix[first]) / prefix[n]

    def draw(self, rng) -> float:
        """Sample one value from the declared distribution."""
        if self.distribution == UNIFORM:
            return rng.uniform(self.lo, self.hi)
        weights = self._zipf_weights()
        offset = rng.choices(range(len(weights)), weights=weights, k=1)[0]
        return self.lo + offset


@dataclass(frozen=True, slots=True)
class StreamSchema:
    """Static description of one data stream.

    Attributes:
        stream_id: Unique stream name (e.g. ``"nyse.trades"``).
        attributes: Ordered attribute definitions.
        tuple_size: Serialised size of one tuple, in bytes.
        rate: Average tuple arrival rate, tuples/second.
    """

    stream_id: str
    attributes: tuple[Attribute, ...]
    tuple_size: float = 64.0
    rate: float = 100.0

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate attribute names in {self.stream_id}")
        if self.tuple_size <= 0 or self.rate < 0:
            raise ValueError("tuple_size must be > 0 and rate >= 0")

    @property
    def bytes_per_second(self) -> float:
        """Average raw stream volume in bytes/second."""
        return self.tuple_size * self.rate

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(f"{self.stream_id} has no attribute {name!r}")

    def attribute_names(self) -> list[str]:
        """Attribute names in declaration order."""
        return [a.name for a in self.attributes]
