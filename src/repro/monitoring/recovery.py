"""Failure-recovery accounting for the live runtime's chaos harness.

The adaptability story of the paper (§3.2.1 coordinator repair, §3.2.2
re-allocation, §4 delegation) is only credible if recovery is
*measured*: how fast failures are detected, how many streams fail over,
how much data the failover replays versus loses.  :class:`RecoveryMetrics`
is the mutable collector the heartbeat monitor, chaos controller, and
recovery manager all write into; :meth:`RecoveryMetrics.build_report`
freezes it into a :class:`RecoveryReport` attached to the live run's
:class:`~repro.live.metrics.LiveReport`.

All counters are monotone (they only grow during a run), and all times
are virtual seconds on the run's clock, so two runs with the same seed
and the same chaos script produce identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass


class RecoveryMetrics:
    """Monotone counters shared by the failure-handling tasks."""

    def __init__(self) -> None:
        self.failures_injected = 0
        self.detections = 0
        self.failovers = 0
        self.streams_unrecovered = 0
        self.reparented_children = 0
        self.coordinator_repairs = 0
        self.heartbeats_sent = 0
        self.tuples_replayed = 0
        self.tuples_lost = 0
        self._failed_at: dict[str, float] = {}
        self._detected_at: dict[str, float] = {}
        self._recovered_at: dict[str, float] = {}
        self._failure_kind: dict[str, str] = {}

    # ------------------------------------------------------------------
    def record_failure(self, node_id: str, kind: str, at: float) -> None:
        """A fault was injected at ``node_id`` (virtual time ``at``)."""
        self.failures_injected += 1
        self._failed_at.setdefault(node_id, at)
        self._failure_kind.setdefault(node_id, kind)

    def record_detection(self, node_id: str, at: float) -> None:
        """The heartbeat monitor declared ``node_id`` dead."""
        if node_id not in self._detected_at:
            self.detections += 1
            self._detected_at[node_id] = at

    def record_recovery(self, node_id: str, at: float) -> None:
        """Repair actions for ``node_id`` finished."""
        self._recovered_at.setdefault(node_id, at)

    def record_lost(self, count: int) -> None:
        """Tuples destroyed by a crash (queued at the dead task)."""
        self.tuples_lost += count

    def record_replayed(self, count: int) -> None:
        """Tuples re-fed to a failover delegate from a replay buffer."""
        self.tuples_replayed += count

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """The monotone counters at this instant (for monotonicity
        checks and progress displays)."""
        return {
            "failures_injected": self.failures_injected,
            "detections": self.detections,
            "failovers": self.failovers,
            "streams_unrecovered": self.streams_unrecovered,
            "reparented_children": self.reparented_children,
            "coordinator_repairs": self.coordinator_repairs,
            "heartbeats_sent": self.heartbeats_sent,
            "tuples_replayed": self.tuples_replayed,
            "tuples_lost": self.tuples_lost,
        }

    def build_report(self) -> "RecoveryReport":
        """Freeze the collected counters into a :class:`RecoveryReport`."""
        detect_delays = [
            self._detected_at[n] - self._failed_at[n]
            for n in sorted(self._detected_at)
            if n in self._failed_at
        ]
        recover_delays = [
            self._recovered_at[n] - self._failed_at[n]
            for n in sorted(self._recovered_at)
            if n in self._failed_at
        ]
        return RecoveryReport(
            failures_injected=self.failures_injected,
            detections=self.detections,
            failovers=self.failovers,
            streams_unrecovered=self.streams_unrecovered,
            reparented_children=self.reparented_children,
            coordinator_repairs=self.coordinator_repairs,
            heartbeats_sent=self.heartbeats_sent,
            tuples_replayed=self.tuples_replayed,
            tuples_lost=self.tuples_lost,
            mean_detection_delay=(
                sum(detect_delays) / len(detect_delays)
                if detect_delays
                else 0.0
            ),
            mean_time_to_recover=(
                sum(recover_delays) / len(recover_delays)
                if recover_delays
                else 0.0
            ),
            failures=tuple(
                (n, self._failure_kind.get(n, "?"), self._failed_at[n])
                for n in sorted(self._failed_at)
            ),
        )


@dataclass(frozen=True)
class RecoveryReport:
    """Aggregated failure/recovery metrics of one chaos run.

    Attributes:
        failures_injected: Crash faults applied by the chaos script
            (partitions, latency spikes, and stalls are not failures —
            they are expected to heal without repair).
        detections: Crashes the heartbeat monitor declared dead.
        failovers: Streams re-delegated to a surviving processor.
        streams_unrecovered: Streams whose delegation could not fail
            over (no surviving processor in the entity).
        reparented_children: Dissemination-tree children moved to a new
            parent after their parent entity crashed.
        coordinator_repairs: Coordinator-tree repairs performed.
        heartbeats_sent: Heartbeat messages exchanged.
        tuples_replayed: Tuples re-fed from replay buffers on failover.
        tuples_lost: Tuples destroyed with crashed tasks' queues.
        mean_detection_delay: Mean virtual seconds from fault injection
            to heartbeat detection.
        mean_time_to_recover: Mean virtual seconds from fault injection
            to completed repair (detection delay + repair work).
        failures: ``(node_id, kind, virtual_time)`` per injected crash.
        audit_violations: Rendered structural-invariant violations found
            by the end-of-run :func:`repro.analysis.invariants.
            audit_federation` pass (crashed entities excluded); must be
            empty after recovery has run.
    """

    failures_injected: int
    detections: int
    failovers: int
    streams_unrecovered: int
    reparented_children: int
    coordinator_repairs: int
    heartbeats_sent: int
    tuples_replayed: int
    tuples_lost: int
    mean_detection_delay: float
    mean_time_to_recover: float
    failures: tuple[tuple[str, str, float], ...] = ()
    audit_violations: tuple[str, ...] = ()

    def summary_lines(self) -> list[str]:
        """Human-readable digest (appended to the live run summary)."""
        return [
            f"chaos: {self.failures_injected} crashes injected, "
            f"{self.detections} detected "
            f"(mean detection {self.mean_detection_delay * 1000:.0f} ms)",
            f"recovery: {self.failovers} stream failovers, "
            f"{self.reparented_children} children re-parented, "
            f"{self.coordinator_repairs} coordinator repairs "
            f"(mean time-to-recover "
            f"{self.mean_time_to_recover * 1000:.0f} ms)",
            f"data: {self.tuples_replayed} tuples replayed, "
            f"{self.tuples_lost} lost with crashed queues, "
            f"{self.streams_unrecovered} streams unrecoverable",
            f"invariant audit: {len(self.audit_violations)} violation(s) "
            "among surviving entities",
        ]
