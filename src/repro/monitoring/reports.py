"""Report records exchanged by the monitoring hierarchy."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LoadReport:
    """One entity's self-measurement at one instant.

    Attributes:
        entity_id: The reporting entity.
        cpu_load: Mean processor utilisation estimate in [0, 1].
        backlog_seconds: Worst queued service backlog across processors.
        query_count: Queries hosted.
        timestamp: Virtual time of the sample.
    """

    entity_id: str
    cpu_load: float
    backlog_seconds: float
    query_count: int
    timestamp: float


@dataclass(frozen=True, slots=True)
class SubtreeLoad:
    """A coordinator's aggregate view of one child subtree."""

    member_id: str
    entity_count: int
    total_cpu_load: float
    max_backlog: float
    total_queries: int
    timestamp: float

    @property
    def mean_cpu_load(self) -> float:
        """Average utilisation across the subtree's entities."""
        if not self.entity_count:
            return 0.0
        return self.total_cpu_load / self.entity_count
