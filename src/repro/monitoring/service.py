"""The hierarchical monitoring service.

Every ``report_interval`` seconds each entity reports to its leaf
coordinator (one message per entity), and each coordinator forwards a
single *aggregate* to its parent (one message per cluster per level).
The root therefore learns system-wide load with O(entities) messages
per round while any coordinator stores only O(k) child aggregates —
the information diet that makes the tree scalable.
"""

from __future__ import annotations

from typing import Callable

from repro.coordination.tree import CoordinatorTree
from repro.monitoring.collectors import EntityLoadCollector
from repro.monitoring.reports import LoadReport, SubtreeLoad
from repro.simulation.simulator import Simulator


class MonitoringService:
    """Collects entity reports and aggregates them up the tree."""

    def __init__(
        self,
        sim: Simulator,
        tree: CoordinatorTree,
        *,
        report_interval: float = 2.0,
    ) -> None:
        self.sim = sim
        self.tree = tree
        self.report_interval = report_interval
        self._collectors: dict[str, EntityLoadCollector] = {}
        self._reports: dict[str, LoadReport] = {}
        self._subtree: dict[tuple[str, int], SubtreeLoad] = {}
        self.report_messages = 0
        self.rounds = 0
        self._stop: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    def register(self, collector: EntityLoadCollector) -> None:
        """Track one entity (id must match its tree membership)."""
        self._collectors[collector.entity.entity_id] = collector

    def deregister(self, entity_id: str) -> None:
        """Stop tracking a departed entity."""
        self._collectors.pop(entity_id, None)
        self._reports.pop(entity_id, None)

    def start(self) -> None:
        """Begin periodic reporting rounds."""
        if self._stop is None:
            self._stop = self.sim.every(self.report_interval, self.run_round)

    def stop(self) -> None:
        """Halt periodic reporting."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """One reporting round: entities report, coordinators aggregate."""
        self.rounds += 1
        for entity_id, collector in self._collectors.items():
            if entity_id not in self.tree.members:
                continue
            self._reports[entity_id] = collector.sample()
            self.report_messages += 1  # entity -> leaf coordinator

        # aggregate level by level: each cluster's leader combines its
        # members' aggregates and reports upward
        self._subtree.clear()
        for level in range(self.tree.depth):
            for cluster in self.tree.layers[level]:
                for member_id in cluster.member_ids:
                    self._subtree[(member_id, level)] = self._aggregate(
                        member_id, level
                    )
                if level + 1 < self.tree.depth:
                    self.report_messages += 1  # leader -> parent

    def _aggregate(self, member_id: str, level: int) -> SubtreeLoad:
        if level == 0:
            report = self._reports.get(member_id)
            if report is None:
                return SubtreeLoad(member_id, 0, 0.0, 0.0, 0, self.sim.now)
            return SubtreeLoad(
                member_id=member_id,
                entity_count=1,
                total_cpu_load=report.cpu_load,
                max_backlog=report.backlog_seconds,
                total_queries=report.query_count,
                timestamp=report.timestamp,
            )
        cluster = self.tree.cluster_led_by(level - 1, member_id)
        children = [
            self._subtree.get((child, level - 1))
            or self._aggregate(child, level - 1)
            for child in cluster.member_ids
        ]
        return SubtreeLoad(
            member_id=member_id,
            entity_count=sum(c.entity_count for c in children),
            total_cpu_load=sum(c.total_cpu_load for c in children),
            max_backlog=max((c.max_backlog for c in children), default=0.0),
            total_queries=sum(c.total_queries for c in children),
            timestamp=self.sim.now,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def entity_report(self, entity_id: str) -> LoadReport | None:
        """Latest report for one entity (``None`` before the first round)."""
        return self._reports.get(entity_id)

    def subtree_view(self, member_id: str, level: int) -> SubtreeLoad | None:
        """A coordinator's latest aggregate for one child subtree."""
        return self._subtree.get((member_id, level))

    def root_view(self) -> SubtreeLoad | None:
        """The root's whole-system aggregate.

        The root coordinator combines the aggregates of every member of
        the top cluster (including its own subtree's).
        """
        root = self.tree.root_id
        if root is None or not self.tree.layers:
            return None
        top_level = self.tree.depth - 1
        members = self.tree.layers[-1][0].member_ids
        children = [
            self._subtree.get((member, top_level)) for member in members
        ]
        children = [c for c in children if c is not None]
        if not children:
            return None
        return SubtreeLoad(
            member_id=root,
            entity_count=sum(c.entity_count for c in children),
            total_cpu_load=sum(c.total_cpu_load for c in children),
            max_backlog=max(c.max_backlog for c in children),
            total_queries=sum(c.total_queries for c in children),
            timestamp=self.sim.now,
        )

    def load_of(self, entity_id: str) -> float:
        """Router-friendly accessor: smoothed CPU load of an entity."""
        report = self._reports.get(entity_id)
        return report.cpu_load if report is not None else 0.0
