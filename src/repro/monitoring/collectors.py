"""Per-entity load sampling."""

from __future__ import annotations

from repro.core.entity import Entity
from repro.monitoring.reports import LoadReport
from repro.ordering.statistics import EwmaEstimator
from repro.simulation.simulator import Simulator


class EntityLoadCollector:
    """Samples one entity's processors into smoothed load reports.

    Utilisation is estimated from the *busy-time delta* between
    samples, so the estimate tracks the current regime rather than the
    lifetime mean; backlog is the instantaneous worst queue.
    """

    def __init__(
        self, sim: Simulator, entity: Entity, *, alpha: float = 0.4
    ) -> None:
        self.sim = sim
        self.entity = entity
        self._load = EwmaEstimator(alpha=alpha)
        self._last_busy = 0.0
        self._last_time = sim.now
        self.samples = 0

    def sample(self) -> LoadReport:
        """Take one sample and return the smoothed report."""
        now = self.sim.now
        busy = sum(
            proc.stats.busy_time for proc in self.entity.processors.values()
        )
        elapsed = now - self._last_time
        procs = max(1, len(self.entity.processors))
        if elapsed > 0:
            instantaneous = (busy - self._last_busy) / (elapsed * procs)
            self._load.update(min(1.0, max(0.0, instantaneous)))
        self._last_busy = busy
        self._last_time = now
        self.samples += 1
        return LoadReport(
            entity_id=self.entity.entity_id,
            cpu_load=self._load.value_or(0.0),
            backlog_seconds=self.entity.max_backlog(),
            query_count=self.entity.query_count,
            timestamp=now,
        )
