"""Accounting for the live adaptation loop (§3.2.2 at runtime).

The paper argues that repartitioning strategies must be judged on three
axes at once: partition quality, decision-making time, and the number of
query movements.  :class:`AdaptationMetrics` is the mutable collector the
live :class:`~repro.live.adaptation.AdaptationController` writes into —
one entry per control round, plus migration-protocol counters — and
:meth:`AdaptationMetrics.build_report` freezes it into an
:class:`AdaptationReport` attached to the run's
:class:`~repro.live.metrics.LiveReport`.

All times are labelled: *virtual* seconds come from the run's
:class:`~repro.live.entity_task.LiveClock`; *wall* seconds (decision and
pause durations) are host-clock measurements, because decision time is
precisely the axis the paper wants measured in real cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.sharing import SharingStats


@dataclass(frozen=True)
class AdaptationRound:
    """One control-loop round, whether or not it triggered moves.

    Attributes:
        virtual_time: Clock reading when the round sampled load.
        imbalance_before: Observed max/ideal part-load ratio at sampling.
        imbalance_after: Planner's predicted ratio after the round (equal
            to ``imbalance_before`` when the round did not adapt).
        migrations: Net queries moved by this round.
        decision_seconds: Wall seconds the repartitioner spent deciding.
        pause_wall_seconds: Wall seconds sources were gated for the
            migration (0.0 when the round did not adapt).
    """

    virtual_time: float
    imbalance_before: float
    imbalance_after: float
    migrations: int
    decision_seconds: float
    pause_wall_seconds: float


class AdaptationMetrics:
    """Monotone counters shared by the adaptation control loop."""

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy
        self.rounds = 0
        self.adaptations = 0
        self.queries_migrated = 0
        self.fragments_migrated = 0
        self.gross_moves = 0
        self.tree_attaches = 0
        self.tree_detaches = 0
        self.decision_seconds = 0.0
        self.pause_wall_seconds = 0.0
        self.audits = 0
        self.audit_violations = 0
        self.partition_rebalances = 0
        self.reshares = 0
        self.aborted_migrations = 0
        self.sharing = SharingStats()
        self._rounds: list[AdaptationRound] = []

    # ------------------------------------------------------------------
    def record_round(self, round_: AdaptationRound) -> None:
        """Account one completed control round."""
        self.rounds += 1
        self._rounds.append(round_)
        self.decision_seconds += round_.decision_seconds
        if round_.migrations > 0:
            self.adaptations += 1
            self.queries_migrated += round_.migrations
            self.pause_wall_seconds += round_.pause_wall_seconds

    def record_transfer(self, fragments: int) -> None:
        """Account the fragments (with state) moved for one query."""
        self.fragments_migrated += fragments

    def record_tree_update(self, attaches: int, detaches: int) -> None:
        """Account dissemination-tree surgery after a migration."""
        self.tree_attaches += attaches
        self.tree_detaches += detaches

    def record_audit(self, violations: int) -> None:
        """Account one post-migration structural-invariant audit."""
        self.audits += 1
        self.audit_violations += violations

    def record_rebalance(self, rebalanced: int) -> None:
        """Account skew-triggered partition rebalances in one round."""
        self.partition_rebalances += rebalanced

    def record_reshare(self, entities: int) -> None:
        """Account entities whose sharing groups were recomputed after
        a migration round."""
        self.reshares += entities

    def record_abort(self) -> None:
        """Account one migration round that failed mid-protocol and was
        rolled back to a consistent placement before resuming feeds."""
        self.aborted_migrations += 1

    def record_sharing(self, stats: SharingStats) -> None:
        """Snapshot the federation's currently realized sharing."""
        self.sharing = stats

    # ------------------------------------------------------------------
    def build_report(self) -> "AdaptationReport":
        """Freeze the collected counters into an :class:`AdaptationReport`."""
        observed = [r.imbalance_before for r in self._rounds]
        return AdaptationReport(
            strategy=self.strategy,
            rounds=self.rounds,
            adaptations=self.adaptations,
            queries_migrated=self.queries_migrated,
            fragments_migrated=self.fragments_migrated,
            gross_moves=self.gross_moves,
            tree_attaches=self.tree_attaches,
            tree_detaches=self.tree_detaches,
            decision_seconds=self.decision_seconds,
            pause_wall_seconds=self.pause_wall_seconds,
            peak_imbalance=max(observed, default=0.0),
            final_imbalance=observed[-1] if observed else 0.0,
            history=tuple(self._rounds),
            audits=self.audits,
            audit_violations=self.audit_violations,
            partition_rebalances=self.partition_rebalances,
            reshares=self.reshares,
            aborted_migrations=self.aborted_migrations,
            sharing=self.sharing,
        )


@dataclass(frozen=True)
class AdaptationReport:
    """Aggregated adaptation metrics of one adaptive live run.

    Attributes:
        strategy: Repartitioner name (``scratch`` / ``cut`` / ``hybrid``).
        rounds: Control-loop rounds that sampled load.
        adaptations: Rounds that actually migrated at least one query.
        queries_migrated: Net query moves summed over all rounds.
        fragments_migrated: Stateful fragments transferred with those
            queries (operator windows move intact, never reset).
        gross_moves: Individual vertex moves the strategies performed
            (≥ ``queries_migrated``; the gap is wasted churn).
        tree_attaches / tree_detaches: Dissemination-tree membership
            changes driven by post-migration interest refreshes.
        decision_seconds: Total wall seconds spent inside the
            repartitioner — the paper's decision-making-time axis.
        pause_wall_seconds: Total wall seconds sources were gated while
            migrations drained and transferred state.
        peak_imbalance: Worst observed max/ideal load ratio at sampling.
        final_imbalance: Ratio observed by the last round.
        history: Per-round records, in round order.
        audits: Post-migration structural-invariant audits run.
        audit_violations: Violations those audits found (must stay 0).
        partition_rebalances: Skew-triggered intra-operator partition
            rebalances (hot-key overrides installed under quiescence).
        reshares: Entities whose shared-computation groups were
            recomputed after a migration round.
        aborted_migrations: Migration rounds that raised mid-protocol
            and were repaired back to a consistent placement (feeds
            resumed, sharing re-attached) instead of crashing the run.
        sharing: Latest realized sharing snapshot (shared fragments,
            member counts, estimated CPU saved).
    """

    strategy: str
    rounds: int
    adaptations: int
    queries_migrated: int
    fragments_migrated: int
    gross_moves: int
    tree_attaches: int
    tree_detaches: int
    decision_seconds: float
    pause_wall_seconds: float
    peak_imbalance: float
    final_imbalance: float
    history: tuple[AdaptationRound, ...] = ()
    audits: int = 0
    audit_violations: int = 0
    partition_rebalances: int = 0
    reshares: int = 0
    aborted_migrations: int = 0
    sharing: SharingStats = SharingStats()

    def summary_lines(self) -> list[str]:
        """Human-readable digest (appended to the live run summary)."""
        return [
            f"adaptation[{self.strategy}]: {self.rounds} rounds, "
            f"{self.adaptations} adapted, {self.queries_migrated} queries "
            f"({self.fragments_migrated} fragments) migrated",
            f"adaptation cost: decisions "
            f"{self.decision_seconds * 1000:.1f} ms, pauses "
            f"{self.pause_wall_seconds * 1000:.1f} ms, tree updates "
            f"+{self.tree_attaches}/-{self.tree_detaches}",
            f"imbalance: peak {self.peak_imbalance:.2f}, "
            f"final {self.final_imbalance:.2f}",
            f"invariant audits: {self.audits} run, "
            f"{self.audit_violations} violations",
            f"partition rebalances: {self.partition_rebalances}, "
            f"aborted migrations: {self.aborted_migrations}",
            f"sharing: {self.sharing.summary()} "
            f"(reshared entities: {self.reshares})",
        ]
