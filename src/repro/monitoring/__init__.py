"""Load monitoring up the coordinator tree.

§3.2.1: "A higher level coordinator distributes queries based on
coarser information."  This package produces that information: each
entity samples its own processors, reports to its leaf coordinator, and
reports aggregate level by level toward the root — so a coordinator at
level L knows only per-subtree totals, never per-processor detail.  The
message cost of keeping the hierarchy informed is measured, and the
router can be driven from these (slightly stale) aggregates instead of
its own bookkeeping.
"""

from repro.monitoring.collectors import EntityLoadCollector
from repro.monitoring.recovery import RecoveryMetrics, RecoveryReport
from repro.monitoring.reports import LoadReport, SubtreeLoad
from repro.monitoring.service import MonitoringService

__all__ = [
    "LoadReport",
    "SubtreeLoad",
    "EntityLoadCollector",
    "MonitoringService",
    "RecoveryMetrics",
    "RecoveryReport",
]
