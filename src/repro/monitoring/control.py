"""Accounting for the multi-tenant control plane.

:class:`ControlMetrics` is the mutable collector the live control plane
writes into — one entry per lifecycle decision plus quota counters —
and :meth:`ControlMetrics.build_report` freezes it into a
:class:`ControlReport` attached to the run's
:class:`~repro.live.metrics.LiveReport`.

Admission latency is measured in *virtual* seconds from the arrival
event to the moment the query's fragments were installed behind the
reopened gate — the client-visible wait, independent of replay speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ControlMetrics:
    """Monotone counters shared by the control plane."""

    def __init__(self) -> None:
        self.arrivals = 0
        self.departures = 0
        self.registered = 0
        self.torn_down = 0
        self.deferred = 0
        self.rejected = 0
        self.queue_peak = 0
        self.quiesce_windows = 0
        self.admission_latencies: list[float] = []

    # ------------------------------------------------------------------
    def record_arrival(self) -> None:
        """One registration event reached the control plane."""
        self.arrivals += 1

    def record_departure(self) -> None:
        """One teardown event reached the control plane."""
        self.departures += 1

    def record_admitted(self, waited: float) -> None:
        """One arrival admitted after ``waited`` virtual seconds."""
        self.registered += 1
        self.admission_latencies.append(waited)

    def record_torn_down(self) -> None:
        """One departure detached (or cancelled from the queue)."""
        self.torn_down += 1

    def record_deferred(self, queue_depth: int) -> None:
        """One arrival parked in the admission queue."""
        self.deferred += 1
        if queue_depth > self.queue_peak:
            self.queue_peak = queue_depth

    def record_rejected(self) -> None:
        """One arrival refused outright (admission queue full)."""
        self.rejected += 1

    def record_window(self) -> None:
        """One pause→drain→apply→resume batch of lifecycle changes."""
        self.quiesce_windows += 1

    # ------------------------------------------------------------------
    def build_report(
        self,
        *,
        shed_by_tenant: dict[str, int] | None = None,
        delivered_by_tenant: dict[str, int] | None = None,
        stranded_in_queue: int = 0,
    ) -> "ControlReport":
        """Freeze the collected counters into a :class:`ControlReport`."""
        waits = sorted(self.admission_latencies)
        p95 = waits[min(len(waits) - 1, int(0.95 * len(waits)))] if waits else 0.0
        mean = sum(waits) / len(waits) if waits else 0.0
        return ControlReport(
            arrivals=self.arrivals,
            departures=self.departures,
            registered=self.registered,
            torn_down=self.torn_down,
            deferred=self.deferred,
            rejected=self.rejected,
            stranded_in_queue=stranded_in_queue,
            queue_peak=self.queue_peak,
            quiesce_windows=self.quiesce_windows,
            mean_admission_latency=mean,
            p95_admission_latency=p95,
            shed_by_tenant=dict(shed_by_tenant or {}),
            delivered_by_tenant=dict(delivered_by_tenant or {}),
        )


@dataclass(frozen=True)
class ControlReport:
    """Aggregated control-plane metrics of one live run.

    Attributes:
        arrivals / departures: Lifecycle events the plane processed.
        registered: Arrivals admitted and wired into the dataflow.
        torn_down: Departures detached from the dataflow.
        deferred: Arrivals that waited in the admission queue at least
            once (the balance constraint refused immediate placement).
        rejected: Arrivals refused outright (queue full).
        stranded_in_queue: Arrivals still queued when the run ended.
        queue_peak: Deepest the admission queue ever got.
        quiesce_windows: Pause→drain→apply→resume batches executed
            (several due events share one window).
        mean_admission_latency / p95_admission_latency: Virtual seconds
            from arrival to installed, over admitted queries.
        shed_by_tenant: Tuples the fair-quota throttle shed per tenant
            (empty when quotas are off).
        delivered_by_tenant: Result tuples delivered per tenant — the
            fairness numerators the E21 bench gates on.
    """

    arrivals: int = 0
    departures: int = 0
    registered: int = 0
    torn_down: int = 0
    deferred: int = 0
    rejected: int = 0
    stranded_in_queue: int = 0
    queue_peak: int = 0
    quiesce_windows: int = 0
    mean_admission_latency: float = 0.0
    p95_admission_latency: float = 0.0
    shed_by_tenant: dict = field(default_factory=dict)
    delivered_by_tenant: dict = field(default_factory=dict)

    def fairness_ratio(self) -> float:
        """Max/min delivered throughput across tenants (1.0 = fair;
        0.0 when fewer than two tenants delivered anything)."""
        counts = [c for c in self.delivered_by_tenant.values() if c > 0]
        if len(counts) < 2:
            return 0.0
        return max(counts) / min(counts)

    def summary_lines(self) -> list[str]:
        """Human-readable digest (appended to the live run summary)."""
        lines = [
            f"control: {self.arrivals} arrivals "
            f"({self.registered} admitted, {self.deferred} deferred, "
            f"{self.rejected} rejected, {self.stranded_in_queue} stranded), "
            f"{self.torn_down}/{self.departures} teardowns",
            f"admission latency: mean "
            f"{self.mean_admission_latency * 1000:.1f} ms, p95 "
            f"{self.p95_admission_latency * 1000:.1f} ms (virtual); "
            f"queue peak {self.queue_peak}, "
            f"{self.quiesce_windows} quiesce windows",
        ]
        if self.shed_by_tenant:
            shed = ", ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(self.shed_by_tenant.items())
            )
            lines.append(f"quota shed: {shed}")
        if self.delivered_by_tenant:
            delivered = ", ".join(
                f"{tenant}={count}"
                for tenant, count in sorted(self.delivered_by_tenant.items())
            )
            ratio = self.fairness_ratio()
            lines.append(
                f"delivered by tenant: {delivered} "
                f"(fairness ratio {ratio:.2f})"
            )
        return lines
