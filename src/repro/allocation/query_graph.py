"""The query graph: vertices are queries, edges are interest overlap.

Edge weights are the *estimated arrival rate in bytes/second of the data
of interest to both end queries* — computed in closed form by the
interest algebra from the catalog's value models.  The module also ships
:func:`figure2_graph`, a faithful reconstruction of the paper's worked
example (both candidate plans balance; duplicate traffic is 8 vs 3
bytes/second).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interest.overlap import overlap_rate
from repro.query.spec import QuerySpec
from repro.streams.catalog import StreamCatalog

Assignment = dict[str, int]


def _edge_key(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass
class QueryGraph:
    """An undirected weighted graph over queries.

    Attributes:
        vertex_weights: query id -> workload (CPU sec/sec).
        edge_weights: sorted (id, id) pair -> shared interest rate
            (bytes/second).  Absent pairs have weight zero.
    """

    vertex_weights: dict[str, float] = field(default_factory=dict)
    edge_weights: dict[tuple[str, str], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, query_id: str, weight: float) -> None:
        """Add/replace a vertex."""
        if weight < 0:
            raise ValueError("vertex weight must be non-negative")
        self.vertex_weights[query_id] = weight

    def add_edge(self, a: str, b: str, weight: float) -> None:
        """Add/replace an undirected edge (self-loops rejected)."""
        if a == b:
            raise ValueError("self-loops are not allowed")
        if a not in self.vertex_weights or b not in self.vertex_weights:
            raise KeyError(f"both endpoints of ({a}, {b}) must be vertices")
        if weight <= 0:
            return
        self.edge_weights[_edge_key(a, b)] = weight

    def remove_vertex(self, query_id: str) -> None:
        """Drop a vertex and its incident edges (query departure)."""
        self.vertex_weights.pop(query_id, None)
        self.edge_weights = {
            pair: w for pair, w in self.edge_weights.items() if query_id not in pair
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self.vertex_weights)

    @property
    def edge_count(self) -> int:
        """Number of (positive-weight) edges."""
        return len(self.edge_weights)

    def vertices(self) -> list[str]:
        """Vertex ids in insertion order."""
        return list(self.vertex_weights)

    def weight(self, a: str, b: str) -> float:
        """Edge weight (0 when absent)."""
        return self.edge_weights.get(_edge_key(a, b), 0.0)

    def neighbors(self, query_id: str) -> dict[str, float]:
        """Adjacent vertex -> edge weight."""
        out: dict[str, float] = {}
        for (a, b), w in self.edge_weights.items():
            if a == query_id:
                out[b] = w
            elif b == query_id:
                out[a] = w
        return out

    def adjacency(self) -> dict[str, dict[str, float]]:
        """Full adjacency map (built once; prefer over many neighbors())."""
        adj: dict[str, dict[str, float]] = {v: {} for v in self.vertex_weights}
        for (a, b), w in self.edge_weights.items():
            adj[a][b] = w
            adj[b][a] = w
        return adj

    def total_vertex_weight(self) -> float:
        """Sum of all workloads."""
        return sum(self.vertex_weights.values())

    def total_edge_weight(self) -> float:
        """Sum of all overlap rates."""
        return sum(self.edge_weights.values())

    # ------------------------------------------------------------------
    # Partition metrics
    # ------------------------------------------------------------------
    def edge_cut(self, assignment: Assignment) -> float:
        """Weighted edge cut: the paper's duplicate-transfer bytes/second."""
        return sum(
            w
            for (a, b), w in self.edge_weights.items()
            if assignment.get(a) != assignment.get(b)
        )

    def part_loads(self, assignment: Assignment, parts: int) -> list[float]:
        """Total vertex weight per partition index."""
        loads = [0.0] * parts
        for vertex, weight in self.vertex_weights.items():
            part = assignment.get(vertex)
            if part is not None:
                loads[part] += weight
        return loads

    def imbalance(self, assignment: Assignment, parts: int) -> float:
        """Max part load over ideal (1.0 = perfectly balanced)."""
        loads = self.part_loads(assignment, parts)
        total = sum(loads)
        if total == 0:
            return 1.0
        return max(loads) / (total / parts)


def build_query_graph(
    queries: list[QuerySpec],
    catalog: StreamCatalog,
    *,
    min_edge_weight: float = 1e-9,
) -> QueryGraph:
    """Build the query graph for a workload.

    Vertex weight = estimated CPU load of the query; edge weight = sum
    over shared input streams of the analytic overlap rate.  Edges below
    ``min_edge_weight`` bytes/second are pruned.
    """
    graph = QueryGraph()
    for query in queries:
        graph.add_vertex(query.query_id, query.estimated_load(catalog))

    by_stream: dict[str, list[QuerySpec]] = {}
    for query in queries:
        for stream_id in query.input_streams:
            by_stream.setdefault(stream_id, []).append(query)

    shared: dict[tuple[str, str], float] = {}
    for stream_id, members in by_stream.items():
        schema = catalog.schema(stream_id)
        for i, qa in enumerate(members):
            ia = qa.interest_for(stream_id)
            for qb in members[i + 1 :]:
                ib = qb.interest_for(stream_id)
                rate = overlap_rate(ia, ib, schema)
                if rate > 0:
                    key = _edge_key(qa.query_id, qb.query_id)
                    shared[key] = shared.get(key, 0.0) + rate

    for (a, b), rate in shared.items():
        if rate >= min_edge_weight:
            graph.add_edge(a, b, rate)
    return graph


def figure2_graph() -> QueryGraph:
    """The paper's Figure 2 query graph, reconstructed exactly.

    Five queries with workloads ``Q1=0.1, Q2=0.1, Q3=0.2, Q4=0.04,
    Q5=0.04`` and overlap edges ``Q1-Q2=10, Q1-Q4=8, Q3-Q4=2, Q2-Q5=1``
    (bytes/second).  Properties stated in the paper, all of which hold:

    * plan (a) = ``{Q3, Q4} | {Q1, Q2, Q5}`` and plan (b) =
      ``{Q3, Q5} | {Q1, Q2, Q4}`` are both perfectly load balanced;
    * plan (a) duplicates 8 bytes/second, plan (b) only 3;
    * Q3 and Q5 share no interest (no edge) yet belong together in the
      better plan.
    """
    graph = QueryGraph()
    graph.add_vertex("Q1", 0.1)
    graph.add_vertex("Q2", 0.1)
    graph.add_vertex("Q3", 0.2)
    graph.add_vertex("Q4", 0.04)
    graph.add_vertex("Q5", 0.04)
    graph.add_edge("Q1", "Q2", 10.0)
    graph.add_edge("Q1", "Q4", 8.0)
    graph.add_edge("Q3", "Q4", 2.0)
    graph.add_edge("Q2", "Q5", 1.0)
    return graph


FIGURE2_PLAN_A: Assignment = {"Q3": 0, "Q4": 0, "Q1": 1, "Q2": 1, "Q5": 1}
FIGURE2_PLAN_B: Assignment = {"Q3": 0, "Q5": 0, "Q1": 1, "Q2": 1, "Q4": 1}
