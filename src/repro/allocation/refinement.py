"""Kernighan–Lin / Fiduccia–Mattheyses style k-way refinement.

Greedy boundary passes: repeatedly move the vertex with the best
cut-gain to another part, subject to the balance constraint, locking
each vertex after it moves once per pass.  When no single move fits the
balance limit, balance-preserving *pair swaps* (classic KL) are tried.
Passes repeat until a pass yields no improvement.

Only **boundary** vertices (those with a neighbour in another part) are
scanned: an interior vertex's gain towards any part is ``-internal
weight <= 0``, so the restriction is exact for positive-gain moves and
turns each scan from O(V·deg) into O(boundary·deg).
"""

from __future__ import annotations

from repro.allocation.query_graph import Assignment, QueryGraph

# Swap scans are quadratic in the candidate count; cap them so large
# graphs stay fast (swaps mainly matter for small, tightly balanced
# instances where single moves are balance-blocked).
_SWAP_CANDIDATE_CAP = 128


def _gains(
    vertex: str,
    assignment: Assignment,
    adjacency: dict[str, dict[str, float]],
    parts: int,
) -> list[tuple[float, int]]:
    """Cut-gain of moving ``vertex`` to each foreign part.

    gain(p) = (edge weight to p) - (edge weight to own part); positive
    gains reduce the cut by that amount.
    """
    own = assignment[vertex]
    weight_to: dict[int, float] = {}
    for neighbor, w in adjacency[vertex].items():
        part = assignment.get(neighbor)
        if part is not None:
            weight_to[part] = weight_to.get(part, 0.0) + w
    internal = weight_to.get(own, 0.0)
    return [
        (weight_to.get(p, 0.0) - internal, p) for p in range(parts) if p != own
    ]


def refine_partition(
    graph: QueryGraph,
    assignment: Assignment,
    parts: int,
    *,
    max_imbalance: float = 1.10,
    max_passes: int = 8,
    movable: set[str] | None = None,
    move_budget: int | None = None,
) -> tuple[Assignment, int]:
    """Refine ``assignment`` (a copy is returned).

    Args:
        graph: The query graph.
        assignment: Current vertex -> part mapping (complete).
        parts: Number of partitions.
        max_imbalance: Max part load allowed, as a multiple of ideal.
        max_passes: Upper bound on full passes.
        movable: If given, only these vertices may move (the hybrid
            repartitioner restricts movement to boundary vertices).
        move_budget: Optional cap on total vertex moves (migration cost
            control); ``None`` means unlimited.

    Returns:
        ``(refined assignment, number of moves made)``.
    """
    assignment = dict(assignment)
    adjacency = graph.adjacency()
    loads = graph.part_loads(assignment, parts)
    total = sum(loads)
    limit = max_imbalance * (total / parts) if total > 0 else float("inf")
    moves_made = 0

    candidates_all = set(movable) if movable is not None else set(
        graph.vertex_weights
    )
    candidates_all = {v for v in candidates_all if v in assignment}

    def is_boundary(vertex: str) -> bool:
        own = assignment[vertex]
        return any(
            assignment.get(n) is not None and assignment[n] != own
            for n in adjacency[vertex]
        )

    boundary = {v for v in candidates_all if is_boundary(v)}

    def apply_move(vertex: str, part: int, locked: set[str]) -> None:
        nonlocal moves_made
        old = assignment[vertex]
        vw = graph.vertex_weights[vertex]
        loads[old] -= vw
        loads[part] += vw
        assignment[vertex] = part
        locked.add(vertex)
        moves_made += 1
        # the move can flip boundary status of the vertex & its neighbours
        for affected in (vertex, *adjacency[vertex]):
            if affected not in candidates_all:
                continue
            if is_boundary(affected):
                boundary.add(affected)
            else:
                boundary.discard(affected)

    def best_single(locked: set[str]) -> tuple[float, str, int] | None:
        best: tuple[float, str, int] | None = None
        for vertex in boundary - locked:
            vw = graph.vertex_weights[vertex]
            for gain, part in _gains(vertex, assignment, adjacency, parts):
                if gain <= 0 or loads[part] + vw > limit:
                    continue
                if best is None or gain > best[0]:
                    best = (gain, vertex, part)
        return best

    def best_swap(locked: set[str]) -> tuple[float, str, str] | None:
        """Balance-preserving pair exchange for balance-blocked moves."""
        unlocked = sorted(boundary - locked)
        if len(unlocked) > _SWAP_CANDIDATE_CAP:
            return None
        best: tuple[float, str, str] | None = None
        gain_cache = {
            v: dict(
                (p, g) for g, p in _gains(v, assignment, adjacency, parts)
            )
            for v in unlocked
        }
        for i, v in enumerate(unlocked):
            pv = assignment[v]
            for u in unlocked[i + 1 :]:
                pu = assignment[u]
                if pu == pv:
                    continue
                gain = (
                    gain_cache[v].get(pu, 0.0)
                    + gain_cache[u].get(pv, 0.0)
                    - 2 * adjacency[v].get(u, 0.0)
                )
                if gain <= 0:
                    continue
                wv = graph.vertex_weights[v]
                wu = graph.vertex_weights[u]
                if loads[pu] + wv - wu > limit or loads[pv] + wu - wv > limit:
                    continue
                if best is None or gain > best[0]:
                    best = (gain, v, u)
        return best

    for __ in range(max_passes):
        locked: set[str] = set()
        pass_moves = 0
        while True:
            if move_budget is not None and moves_made >= move_budget:
                return assignment, moves_made
            single = best_single(locked)
            if single is not None:
                __gain, vertex, part = single
                apply_move(vertex, part, locked)
                pass_moves += 1
                continue
            swap = best_swap(locked)
            if swap is not None:
                __gain, v, u = swap
                pv, pu = assignment[v], assignment[u]
                apply_move(v, pu, locked)
                apply_move(u, pv, locked)
                pass_moves += 2
                continue
            break
        if not pass_moves:
            break
    return assignment, moves_made
