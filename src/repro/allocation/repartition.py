"""Adaptive repartitioning strategies (§3.2.2, last paragraph).

"One approach is to repartition the query graph from scratch.  This may
result in a relatively optimal partitioning but with a long decision
making time and a large number of query movements.  Another approach is
to cut some vertices from the overloaded partitions to other underloaded
partitions without considering the relationship of overlap in data
interest. [...] Hence a desirable approach should be able to achieve a
trade-off between these two extremes."

Three strategies share one interface:

* :class:`ScratchRepartitioner` — full multilevel re-run, with a label
  matching step so migration counts are not inflated by arbitrary part
  renumbering;
* :class:`CutRepartitioner` — pure load repair, overlap-blind;
* :class:`HybridRepartitioner` — gain-aware load repair plus
  budget-bounded boundary refinement: the paper's desired middle ground.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.allocation.partitioning import MultilevelPartitioner
from repro.allocation.query_graph import Assignment, QueryGraph
from repro.allocation.refinement import refine_partition


@dataclass(frozen=True)
class RepartitionOutcome:
    """What one adaptation step produced.

    ``migrations`` is always the *net* count — vertices whose final part
    differs from their starting part (via :func:`_count_migrations`) —
    so the three strategies are comparable; ``gross_moves`` additionally
    counts every individual move an incremental strategy performed (a
    vertex moved twice counts twice).  For the from-scratch strategy the
    two coincide by construction.
    """

    assignment: Assignment
    cut: float
    imbalance: float
    migrations: int
    decision_seconds: float
    gross_moves: int = 0


def _complete(assignment: Assignment, graph: QueryGraph, parts: int) -> Assignment:
    """Place vertices missing from ``assignment`` (new arrivals) onto the
    currently least-loaded part so every strategy starts complete."""
    out = {v: p for v, p in assignment.items() if v in graph.vertex_weights}
    loads = graph.part_loads(out, parts)
    for vertex in graph.vertex_weights:
        if vertex not in out:
            part = min(range(parts), key=lambda p: loads[p])
            out[vertex] = part
            loads[part] += graph.vertex_weights[vertex]
    return out


def _count_migrations(old: Assignment, new: Assignment) -> int:
    """Vertices whose part changed (arrivals don't count as migrations)."""
    return sum(1 for v, p in new.items() if v in old and old[v] != p)


def _match_labels(old: Assignment, new: Assignment, parts: int) -> Assignment:
    """Relabel ``new``'s parts to maximise agreement with ``old``.

    Greedy maximum-overlap matching: a from-scratch run returns
    arbitrary part numbers, and without relabelling almost every query
    would look migrated.
    """
    overlap = [[0] * parts for __ in range(parts)]
    for vertex, new_part in new.items():
        old_part = old.get(vertex)
        if old_part is not None:
            overlap[new_part][old_part] += 1
    mapping: dict[int, int] = {}
    used_old: set[int] = set()
    pairs = sorted(
        (
            (overlap[np][op], np, op)
            for np in range(parts)
            for op in range(parts)
        ),
        reverse=True,
    )
    for __, np, op in pairs:
        if np not in mapping and op not in used_old:
            mapping[np] = op
            used_old.add(op)
    for np in range(parts):
        if np not in mapping:
            free = next(p for p in range(parts) if p not in used_old)
            mapping[np] = free
            used_old.add(free)
    return {v: mapping[p] for v, p in new.items()}


class ScratchRepartitioner:
    """Repartition from scratch with the multilevel partitioner."""

    def __init__(self, *, max_imbalance: float = 1.10, seed: int = 0) -> None:
        self.partitioner = MultilevelPartitioner(
            max_imbalance=max_imbalance, seed=seed
        )

    def repartition(
        self, graph: QueryGraph, current: Assignment, parts: int
    ) -> RepartitionOutcome:
        """Ignore ``current`` except for label matching."""
        started = time.perf_counter()
        result = self.partitioner.partition(graph, parts)
        current = _complete(current, graph, parts)
        assignment = _match_labels(current, result.assignment, parts)
        elapsed = time.perf_counter() - started
        migrations = _count_migrations(current, assignment)
        return RepartitionOutcome(
            assignment=assignment,
            cut=graph.edge_cut(assignment),
            imbalance=graph.imbalance(assignment, parts),
            migrations=migrations,
            decision_seconds=elapsed,
            gross_moves=migrations,
        )


class CutRepartitioner:
    """Overlap-blind load repair: move vertices off overloaded parts.

    Vertices migrate smallest-first from the most loaded part to the
    least loaded part until every part is within ``max_imbalance`` of
    ideal (or no further single move helps).  A move is only accepted
    when it leaves the target part at or below the balance limit, so a
    vertex that lands on an underloaded part can never make that part
    the next overload source — every vertex moves at most once and the
    repair converges without exhausting its guard counter.
    """

    def __init__(self, *, max_imbalance: float = 1.10) -> None:
        self.max_imbalance = max_imbalance

    def repartition(
        self, graph: QueryGraph, current: Assignment, parts: int
    ) -> RepartitionOutcome:
        """Repair overload by moving vertices, ignoring edge weights."""
        started = time.perf_counter()
        assignment = _complete(current, graph, parts)
        before = dict(assignment)
        loads = graph.part_loads(assignment, parts)
        total = sum(loads)
        limit = self.max_imbalance * total / parts if total > 0 else float("inf")
        gross = 0

        by_part: dict[int, list[str]] = {p: [] for p in range(parts)}
        for vertex, part in assignment.items():
            by_part[part].append(vertex)

        guard = 4 * max(1, graph.vertex_count)
        while guard > 0:
            guard -= 1
            heavy = max(range(parts), key=lambda p: loads[p])
            light = min(range(parts), key=lambda p: loads[p])
            if loads[heavy] <= limit or heavy == light:
                break
            candidates = sorted(
                by_part[heavy], key=lambda v: graph.vertex_weights[v]
            )
            moved = False
            for vertex in candidates:
                vw = graph.vertex_weights[vertex]
                # The move must both improve the overloaded part and
                # keep the target within the limit: an overshot target
                # would become the next overload source and the same
                # vertices would ping-pong until the guard expired.
                if (
                    loads[light] + vw < loads[heavy]
                    and loads[light] + vw <= limit
                ):
                    by_part[heavy].remove(vertex)
                    by_part[light].append(vertex)
                    assignment[vertex] = light
                    loads[heavy] -= vw
                    loads[light] += vw
                    gross += 1
                    moved = True
                    break
            if not moved:
                break

        elapsed = time.perf_counter() - started
        return RepartitionOutcome(
            assignment=assignment,
            cut=graph.edge_cut(assignment),
            imbalance=graph.imbalance(assignment, parts),
            migrations=_count_migrations(before, assignment),
            decision_seconds=elapsed,
            gross_moves=gross,
        )


class HybridRepartitioner:
    """The paper's desired trade-off.

    Two phases, both incremental and migration-bounded:

    1. *gain-aware load repair* — like the cut strategy, but among the
       vertices that fix the overload it prefers the one whose move
       hurts the cut least (or helps most);
    2. *boundary refinement* — KL/FM restricted to vertices adjacent to
       a cut edge, with a move budget.
    """

    def __init__(
        self,
        *,
        max_imbalance: float = 1.10,
        move_budget_fraction: float = 0.15,
    ) -> None:
        self.max_imbalance = max_imbalance
        self.move_budget_fraction = move_budget_fraction

    def repartition(
        self, graph: QueryGraph, current: Assignment, parts: int
    ) -> RepartitionOutcome:
        """Gain-aware load repair plus budget-bounded boundary refinement."""
        started = time.perf_counter()
        assignment = _complete(current, graph, parts)
        before = dict(assignment)
        adjacency = graph.adjacency()
        loads = graph.part_loads(assignment, parts)
        total = sum(loads)
        limit = self.max_imbalance * total / parts if total > 0 else float("inf")
        gross = 0

        def cut_delta(vertex: str, target: int) -> float:
            own = assignment[vertex]
            delta = 0.0
            for neighbor, w in adjacency[vertex].items():
                part = assignment.get(neighbor)
                if part == own:
                    delta += w
                elif part == target:
                    delta -= w
            return delta

        guard = 4 * max(1, graph.vertex_count)
        while guard > 0:
            guard -= 1
            heavy = max(range(parts), key=lambda p: loads[p])
            light = min(range(parts), key=lambda p: loads[p])
            if loads[heavy] <= limit or heavy == light:
                break
            movable = [
                v
                for v, p in assignment.items()
                if p == heavy
                and loads[light] + graph.vertex_weights[v] < loads[heavy]
            ]
            if not movable:
                break
            vertex = min(movable, key=lambda v: (cut_delta(v, light), v))
            vw = graph.vertex_weights[vertex]
            assignment[vertex] = light
            loads[heavy] -= vw
            loads[light] += vw
            gross += 1

        boundary: set[str] = set()
        for (a, b), __ in graph.edge_weights.items():
            if assignment.get(a) != assignment.get(b):
                boundary.add(a)
                boundary.add(b)
        budget = max(1, int(self.move_budget_fraction * graph.vertex_count))
        assignment, moves = refine_partition(
            graph,
            assignment,
            parts,
            max_imbalance=self.max_imbalance,
            movable=boundary,
            move_budget=budget,
        )
        gross += moves

        elapsed = time.perf_counter() - started
        return RepartitionOutcome(
            assignment=assignment,
            cut=graph.edge_cut(assignment),
            imbalance=graph.imbalance(assignment, parts),
            migrations=_count_migrations(before, assignment),
            decision_seconds=elapsed,
            gross_moves=gross,
        )


REPARTITIONER_NAMES = ("scratch", "cut", "hybrid")


def make_repartitioner(
    name: str, *, max_imbalance: float = 1.10, seed: int = 0
):
    """Instantiate a repartition strategy by name (CLI / adaptation loop)."""
    if name == "scratch":
        return ScratchRepartitioner(max_imbalance=max_imbalance, seed=seed)
    if name == "cut":
        return CutRepartitioner(max_imbalance=max_imbalance)
    if name == "hybrid":
        return HybridRepartitioner(max_imbalance=max_imbalance)
    raise ValueError(f"strategy must be one of {REPARTITIONER_NAMES}")
