"""Query-to-entity allocation as weighted graph partitioning (§3.2.2).

"Each vertex in the query graph corresponds to a query and there is an
edge between two vertices if there is overlap in their data interest.  A
vertex is weighted by the workload incurred by the query and an edge is
weighted with the estimated arrival rate (bytes/second) of the data of
interest to both end vertices."

The package provides:

* :mod:`repro.allocation.query_graph` — graph construction from query
  specs (edge weights computed analytically from the interest algebra)
  and the paper's exact Figure-2 example;
* :mod:`repro.allocation.partitioning` — a from-scratch multilevel
  partitioner (heavy-edge matching, greedy growth, refinement);
* :mod:`repro.allocation.refinement` — Kernighan–Lin / Fiduccia–Mattheyses
  boundary refinement under a balance constraint;
* :mod:`repro.allocation.repartition` — the paper's adaptive
  repartitioning spectrum: from-scratch, cut-only, and the hybrid
  trade-off;
* :mod:`repro.allocation.assigners` — the baselines graph partitioning
  is compared against (random, round-robin, load-only, similarity-only).
"""

from repro.allocation.assigners import (
    LoadOnlyAssigner,
    RandomAssigner,
    RoundRobinAssigner,
    SimilarityAssigner,
)
from repro.allocation.partitioning import MultilevelPartitioner, PartitionResult
from repro.allocation.query_graph import QueryGraph, build_query_graph, figure2_graph
from repro.allocation.refinement import refine_partition
from repro.allocation.repartition import (
    CutRepartitioner,
    HybridRepartitioner,
    RepartitionOutcome,
    ScratchRepartitioner,
)

__all__ = [
    "QueryGraph",
    "build_query_graph",
    "figure2_graph",
    "MultilevelPartitioner",
    "PartitionResult",
    "refine_partition",
    "ScratchRepartitioner",
    "CutRepartitioner",
    "HybridRepartitioner",
    "RepartitionOutcome",
    "RandomAssigner",
    "RoundRobinAssigner",
    "LoadOnlyAssigner",
    "SimilarityAssigner",
]
