"""Multilevel weighted graph partitioning.

The classic three-phase scheme (the family METIS belongs to), built from
scratch:

1. **Coarsen** — heavy-edge matching collapses the heaviest-overlap
   query pairs into supervertices until the graph is small;
2. **Initial partition** — greedy affinity-aware growth assigns coarse
   vertices to ``k`` parts under a balance limit;
3. **Uncoarsen + refine** — the assignment is projected back level by
   level, with KL/FM boundary refinement at each level.

Both coarsening and refinement can be disabled for the ablation study in
E6 (``bench_allocation_quality``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.allocation.query_graph import Assignment, QueryGraph
from repro.allocation.refinement import refine_partition


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one partitioning run."""

    assignment: Assignment
    cut: float
    imbalance: float
    levels: int
    refinement_moves: int


def _coarsen_once(
    graph: QueryGraph, rng: random.Random
) -> tuple[QueryGraph, dict[str, str]]:
    """One round of heavy-edge matching.

    Returns the coarser graph and the fine-vertex -> supervertex map.
    """
    adjacency = graph.adjacency()
    order = list(graph.vertex_weights)
    rng.shuffle(order)
    matched: set[str] = set()
    mapping: dict[str, str] = {}
    for vertex in order:
        if vertex in matched:
            continue
        partner = None
        best_w = 0.0
        for neighbor, w in adjacency[vertex].items():
            if neighbor not in matched and w > best_w:
                partner = neighbor
                best_w = w
        matched.add(vertex)
        if partner is None:
            mapping[vertex] = vertex
        else:
            matched.add(partner)
            super_id = vertex if vertex <= partner else partner
            mapping[vertex] = super_id
            mapping[partner] = super_id

    coarse = QueryGraph()
    for vertex, weight in graph.vertex_weights.items():
        super_id = mapping[vertex]
        coarse.vertex_weights[super_id] = (
            coarse.vertex_weights.get(super_id, 0.0) + weight
        )
    for (a, b), w in graph.edge_weights.items():
        sa, sb = mapping[a], mapping[b]
        if sa == sb:
            continue
        key = (sa, sb) if sa <= sb else (sb, sa)
        coarse.edge_weights[key] = coarse.edge_weights.get(key, 0.0) + w
    return coarse, mapping


def _greedy_initial(
    graph: QueryGraph, parts: int, max_imbalance: float, rng: random.Random
) -> Assignment:
    """Affinity-aware greedy growth on the coarsest graph.

    Vertices are placed heaviest-first; each goes to the part with the
    strongest edge affinity among parts that stay under the balance
    limit, falling back to the least-loaded part.
    """
    adjacency = graph.adjacency()
    total = graph.total_vertex_weight()
    limit = max_imbalance * total / parts if total > 0 else float("inf")
    loads = [0.0] * parts
    assignment: Assignment = {}
    order = sorted(
        graph.vertex_weights, key=lambda v: -graph.vertex_weights[v]
    )
    for vertex in order:
        vw = graph.vertex_weights[vertex]
        affinity = [0.0] * parts
        for neighbor, w in adjacency[vertex].items():
            part = assignment.get(neighbor)
            if part is not None:
                affinity[part] += w
        feasible = [p for p in range(parts) if loads[p] + vw <= limit]
        if feasible:
            part = max(feasible, key=lambda p: (affinity[p], -loads[p]))
        else:
            part = min(range(parts), key=lambda p: loads[p])
        assignment[vertex] = part
        loads[part] += vw
    return assignment


class MultilevelPartitioner:
    """Configurable multilevel partitioner.

    Args:
        max_imbalance: Balance constraint (max part load / ideal).
        coarsen_limit: Stop coarsening below this many vertices.
        seed: RNG seed for matching order (deterministic output).
        use_coarsening: Disable for the ablation (partition flat).
        use_refinement: Disable for the ablation (projection only).
    """

    def __init__(
        self,
        *,
        max_imbalance: float = 1.10,
        coarsen_limit: int = 48,
        seed: int = 0,
        use_coarsening: bool = True,
        use_refinement: bool = True,
    ) -> None:
        self.max_imbalance = max_imbalance
        self.coarsen_limit = coarsen_limit
        self.seed = seed
        self.use_coarsening = use_coarsening
        self.use_refinement = use_refinement

    def partition(self, graph: QueryGraph, parts: int) -> PartitionResult:
        """Partition ``graph`` into ``parts`` parts."""
        if parts < 1:
            raise ValueError("parts must be >= 1")
        if parts == 1 or graph.vertex_count <= 1:
            assignment = {v: 0 for v in graph.vertex_weights}
            return PartitionResult(
                assignment=assignment,
                cut=graph.edge_cut(assignment),
                imbalance=graph.imbalance(assignment, parts),
                levels=0,
                refinement_moves=0,
            )

        rng = random.Random(self.seed)
        levels: list[tuple[QueryGraph, dict[str, str]]] = []
        current = graph
        if self.use_coarsening:
            floor = max(self.coarsen_limit, parts * 4)
            while current.vertex_count > floor:
                coarse, mapping = _coarsen_once(current, rng)
                if coarse.vertex_count >= current.vertex_count * 0.95:
                    break
                levels.append((current, mapping))
                current = coarse

        assignment = _greedy_initial(current, parts, self.max_imbalance, rng)
        moves = 0
        if self.use_refinement:
            assignment, m = refine_partition(
                current, assignment, parts, max_imbalance=self.max_imbalance
            )
            moves += m

        # Uncoarsen: project through each level and refine.
        for fine, mapping in reversed(levels):
            assignment = {v: assignment[mapping[v]] for v in fine.vertex_weights}
            if self.use_refinement:
                assignment, m = refine_partition(
                    fine, assignment, parts, max_imbalance=self.max_imbalance
                )
                moves += m

        return PartitionResult(
            assignment=assignment,
            cut=graph.edge_cut(assignment),
            imbalance=graph.imbalance(assignment, parts),
            levels=len(levels),
            refinement_moves=moves,
        )
