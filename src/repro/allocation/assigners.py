"""Online allocation baselines the partitioner is compared against.

Each assigner processes queries in arrival order (the paper's "query
streams") and never reconsiders past decisions — which is exactly what
makes them cheap and exactly why they lose on edge cut or balance:

* :class:`RandomAssigner` / :class:`RoundRobinAssigner` — the
  no-information strawmen;
* :class:`LoadOnlyAssigner` — classic load balancing, overlap-blind
  (the paper: "only considering [load] balance");
* :class:`SimilarityAssigner` — the opposite extreme: co-locate by
  overlap ("only considering allocating similar queries together may
  not result in good performance").
"""

from __future__ import annotations

import random

from repro.allocation.query_graph import Assignment, QueryGraph


class RandomAssigner:
    """Uniform random placement."""

    def __init__(self, parts: int, *, seed: int = 0) -> None:
        if parts < 1:
            raise ValueError("parts must be >= 1")
        self.parts = parts
        self._rng = random.Random(seed)

    def assign_all(
        self, graph: QueryGraph, order: list[str] | None = None
    ) -> Assignment:
        """Assign every vertex of ``graph``; ``order`` defaults to insertion."""
        vertices = order if order is not None else graph.vertices()
        return {v: self._rng.randrange(self.parts) for v in vertices}


class RoundRobinAssigner:
    """Cyclic placement in arrival order."""

    def __init__(self, parts: int) -> None:
        if parts < 1:
            raise ValueError("parts must be >= 1")
        self.parts = parts

    def assign_all(
        self, graph: QueryGraph, order: list[str] | None = None
    ) -> Assignment:
        """Assign every vertex cyclically."""
        vertices = order if order is not None else graph.vertices()
        return {v: i % self.parts for i, v in enumerate(vertices)}


class LoadOnlyAssigner:
    """Greedy least-loaded placement (ignores overlap entirely).

    Args:
        parts: Number of entities.
        divisible: Optional per-query parallelism: a query partitioned
            k ways inside its entity packs like ``weight / k`` for
            balance purposes — the stage's load spreads over k
            processors, so the entity-level bin-packing should see the
            per-processor share, not the whole stage.
    """

    def __init__(
        self, parts: int, *, divisible: dict[str, int] | None = None
    ) -> None:
        if parts < 1:
            raise ValueError("parts must be >= 1")
        self.parts = parts
        self.divisible = divisible or {}

    def _weight(self, graph: QueryGraph, vertex: str) -> float:
        return graph.vertex_weights[vertex] / max(
            1, self.divisible.get(vertex, 1)
        )

    def assign_all(
        self, graph: QueryGraph, order: list[str] | None = None
    ) -> Assignment:
        """Each query goes to the currently least-loaded part."""
        vertices = order if order is not None else graph.vertices()
        loads = [0.0] * self.parts
        assignment: Assignment = {}
        for vertex in vertices:
            part = min(range(self.parts), key=lambda p: loads[p])
            assignment[vertex] = part
            loads[part] += self._weight(graph, vertex)
        return assignment


class SimilarityAssigner:
    """Greedy co-location by overlap, with only a loose load cap.

    Each query goes to the part holding the most shared interest with
    it.  A hard cap of ``cap_factor`` times the running ideal load is
    the only concession to balance — enough to avoid a degenerate
    single-part pile-up, but (deliberately) far from balanced.
    ``divisible`` discounts partition-parallel queries exactly as in
    :class:`LoadOnlyAssigner`.
    """

    def __init__(
        self,
        parts: int,
        *,
        cap_factor: float = 2.0,
        divisible: dict[str, int] | None = None,
    ) -> None:
        if parts < 1:
            raise ValueError("parts must be >= 1")
        self.parts = parts
        self.cap_factor = cap_factor
        self.divisible = divisible or {}

    def assign_all(
        self, graph: QueryGraph, order: list[str] | None = None
    ) -> Assignment:
        """Assign each query to its highest-affinity feasible part."""
        vertices = order if order is not None else graph.vertices()
        adjacency = graph.adjacency()
        loads = [0.0] * self.parts
        placed_total = 0.0
        assignment: Assignment = {}
        for vertex in vertices:
            vw = graph.vertex_weights[vertex] / max(
                1, self.divisible.get(vertex, 1)
            )
            placed_total += vw
            cap = self.cap_factor * placed_total / self.parts
            affinity = [0.0] * self.parts
            for neighbor, w in adjacency[vertex].items():
                part = assignment.get(neighbor)
                if part is not None:
                    affinity[part] += w
            feasible = [p for p in range(self.parts) if loads[p] + vw <= cap]
            if feasible:
                part = max(feasible, key=lambda p: (affinity[p], -loads[p]))
            else:
                part = min(range(self.parts), key=lambda p: loads[p])
            assignment[vertex] = part
            loads[part] += vw
        return assignment
