"""Fragment execution on simulated processors.

A :class:`LocalEngine` hosts fragment runtimes on one processor.  Every
ingested tuple is charged its fragment CPU cost on the processor's FIFO
queue; when the work item completes, the fragment's outputs are handed to
the runtime's downstream callback (another processor's engine, the entity
gateway, or the client sink).  Queueing delay therefore emerges from load
exactly as §4.1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.plan import Fragment
from repro.simulation.processor import SimProcessor
from repro.simulation.simulator import Simulator
from repro.streams.tuples import StreamTuple

Downstream = Callable[[StreamTuple], None]


@dataclass
class FragmentRuntime:
    """A fragment installed on a processor with a downstream hookup."""

    fragment: Fragment
    downstream: Downstream | None = None
    tuples_in: int = 0
    tuples_out: int = 0
    busy_cost: float = 0.0

    def rewire(self, downstream: Downstream | None) -> None:
        """Change where outputs go (used by the Adaptation Module)."""
        self.downstream = downstream


class LocalEngine:
    """All fragments hosted on one simulated processor."""

    def __init__(self, sim: Simulator, processor: SimProcessor) -> None:
        self.sim = sim
        self.processor = processor
        self._runtimes: dict[str, FragmentRuntime] = {}

    # ------------------------------------------------------------------
    @property
    def fragment_ids(self) -> list[str]:
        """Ids of currently installed fragments."""
        return list(self._runtimes)

    def runtime(self, fragment_id: str) -> FragmentRuntime:
        """Look up an installed fragment runtime."""
        return self._runtimes[fragment_id]

    def install(
        self, fragment: Fragment, downstream: Downstream | None = None
    ) -> FragmentRuntime:
        """Install a fragment; replaces any previous same-id install."""
        runtime = FragmentRuntime(fragment=fragment, downstream=downstream)
        self._runtimes[fragment.fragment_id] = runtime
        return runtime

    def uninstall(self, fragment_id: str) -> Fragment | None:
        """Remove a fragment (state kept — migration decides to reset)."""
        runtime = self._runtimes.pop(fragment_id, None)
        return runtime.fragment if runtime else None

    def estimated_load(self, input_rates: dict[str, float]) -> float:
        """CPU sec/sec across installed fragments given per-fragment rates."""
        return sum(
            runtime.fragment.estimated_load(input_rates.get(fid, 0.0))
            for fid, runtime in self._runtimes.items()
        )

    # ------------------------------------------------------------------
    def ingest(
        self,
        fragment_id: str,
        tup: StreamTuple,
        downstream: Downstream | None = None,
    ) -> None:
        """Feed one tuple to a fragment; outputs flow after CPU service.

        ``downstream`` overrides the runtime's wiring for this tuple
        only (the Adaptation Module routes per tuple).  Unknown fragment
        ids are ignored (the tuple raced a migration); the caller's
        routing table will catch up on its next refresh.
        """
        runtime = self._runtimes.get(fragment_id)
        if runtime is None:
            return
        runtime.tuples_in += 1
        cost = runtime.fragment.cost_for(tup)
        runtime.busy_cost += cost
        # Operator state must advance in arrival order, so the chain runs
        # now; the CPU charge delays only the *visibility* of outputs.
        outputs = runtime.fragment.run(tup, self.sim.now)
        deliver = downstream if downstream is not None else None

        def complete() -> None:
            runtime.tuples_out += len(outputs)
            target = deliver if deliver is not None else runtime.downstream
            if target is not None:
                for out in outputs:
                    target(out)

        self.processor.submit(cost, on_done=complete, tag=fragment_id)

    def ingest_batch(
        self,
        fragment_id: str,
        batch: list[StreamTuple],
        downstream: Downstream | None = None,
    ) -> None:
        """Feed a whole batch to a fragment as one amortised work item.

        The batch runs through the fragment's fused pipeline
        (:meth:`~repro.engine.plan.Fragment.run_batch`) and is charged
        as a *single* CPU work item of the amortised batch cost, so the
        per-event scheduling overhead — and the per-tuple cost probing —
        is paid once per batch instead of once per tuple.  Outputs
        become visible together when the work item completes, mirroring
        how :meth:`ingest` defers visibility behind the CPU charge.
        """
        runtime = self._runtimes.get(fragment_id)
        if runtime is None or not batch:
            return
        runtime.tuples_in += len(batch)
        cost = runtime.fragment.cost_for_batch(batch)
        runtime.busy_cost += cost
        outputs = runtime.fragment.run_batch(batch, self.sim.now)
        deliver = downstream if downstream is not None else None

        def complete() -> None:
            runtime.tuples_out += len(outputs)
            target = deliver if deliver is not None else runtime.downstream
            if target is not None:
                for out in outputs:
                    target(out)

        self.processor.submit(cost, on_done=complete, tag=fragment_id)
