"""Multi-query shared-computation optimizer.

The §3.2.2 allocator colocates queries with high interest overlap, but
colocation alone only saves WAN bandwidth: each query still evaluates
its own copy of the same leading filters, windows and joins.  This
module turns that overlap into a CPU win.  Colocated queries are grouped
by the longest common prefix of their canonical operator fingerprints
(:meth:`QuerySpec.operator_fingerprints`), and each group is rewritten
into

* one **shared fragment** — a single instance of the common prefix,
  receiving each input tuple once and running through the ordinary fused
  :meth:`Fragment.run_batch` path, and
* one **tap fragment per member** — a :class:`TapOperator` (which
  relabels prefix outputs back to the member's own operator names, so
  results stay bit-identical to unshared execution) followed by the
  member's private suffix operators.

The tap fragments slice the member's *canonical plan* instances, so a
query's stateful suffix operators (windows, accumulators) survive any
re-share: re-grouping builds new fragment objects around the same
operator instances.  The shared prefix itself is rebuilt fresh — safe
before data flows, and safe at any quiescent point when the prefix is
stateless (filters only).  Groups whose shared prefix contains stateful
operators (``join``/``agg`` fingerprints) are flagged ``stateful``: they
may only be formed at deploy time and their members are pinned against
migration, because splitting them would need a per-member copy of shared
window state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.operators.base import Operator
from repro.engine.plan import Fragment, QueryPlan
from repro.query.spec import QuerySpec
from repro.streams.catalog import StreamCatalog
from repro.streams.tuples import StreamTuple

#: Fingerprint kinds whose operators keep window state — a shared prefix
#: containing one cannot be split once data has flowed.
STATEFUL_KINDS = frozenset({"join", "agg"})

#: Fingerprint kinds whose outputs carry ``<operator name>.out`` stream
#: ids and therefore need relabelling at the tap.
_RENAMING_KINDS = frozenset({"join", "agg", "union"})


class TapOperator(Operator):
    """Per-query fan-out point at the end of a shared prefix.

    Passes tuples through at (near) zero cost, relabelling stream ids
    that a shared prefix operator stamped with *its* name back to the
    member query's own operator name — joins, unions and aggregates
    embed their instance name in output ``stream_id``, and bit-identical
    results require the member's name, not the shared instance's.
    """

    def __init__(
        self,
        name: str,
        query_id: str,
        rename: dict[str, str] | None = None,
    ) -> None:
        super().__init__(name, cost_per_tuple=0.0, estimated_selectivity=1.0)
        self.query_id = query_id
        self.rename = dict(rename or {})

    def fingerprint(self) -> tuple:
        return ("tap", self.query_id, tuple(sorted(self.rename.items())))

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        target = self.rename.get(tup.stream_id)
        if target is None:
            return [tup]
        return [tup.relabel(target)]

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: one comprehension, rename map pre-bound."""
        rename = self.rename
        if not rename:
            return list(batch)
        return [
            tup if tup.stream_id not in rename else tup.relabel(rename[tup.stream_id])
            for tup in batch
        ]


@dataclass
class SharedFragment(Fragment):
    """A fragment evaluating a shared prefix on behalf of ``members``.

    ``query_id`` holds the group id; runtimes that attribute CPU per
    query split this fragment's cost evenly across the members.
    """

    members: tuple[str, ...] = ()
    stateful: bool = False


@dataclass
class SharedGroup:
    """One rewritten sharing group: shared prefix + per-member taps."""

    group_id: str
    members: tuple[str, ...]
    prefix_len: int
    input_streams: tuple[str, ...]
    shared: SharedFragment
    taps: dict[str, Fragment] = field(default_factory=dict)
    stateful: bool = False

    def cpu_saved_estimate(self, catalog: StreamCatalog) -> float:
        """Estimated CPU sec/sec saved vs. unshared execution.

        Each member beyond the first would have run its own copy of the
        prefix over the full group input rate.
        """
        rate = sum(catalog.schema(s).rate for s in self.input_streams)
        return (len(self.members) - 1) * self.shared.estimated_load(rate)


@dataclass
class SharedDeployment:
    """A :class:`SharedGroup` wired onto an entity's processors."""

    group: SharedGroup
    shared_proc: str
    tap_procs: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class SharingStats:
    """Aggregate sharing counters for monitoring reports."""

    shared_fragments: int = 0
    shared_queries: int = 0
    taps_per_group: tuple[int, ...] = ()
    cpu_saved_estimate: float = 0.0

    def summary(self) -> str:
        """One monitoring line."""
        return (
            f"shared_fragments={self.shared_fragments} "
            f"shared_queries={self.shared_queries} "
            f"taps_per_group={list(self.taps_per_group)} "
            f"cpu_saved_estimate={self.cpu_saved_estimate:.6f}"
        )


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------
def prefix_is_stateful(fingerprints: tuple[tuple, ...], length: int) -> bool:
    """Whether the first ``length`` fingerprints contain a stateful op."""
    return any(fp[0] in STATEFUL_KINDS for fp in fingerprints[:length])


def stateless_prefix_len(
    fingerprints: tuple[tuple, ...], length: int
) -> int:
    """Clip a prefix length to its leading stateless (filter) run."""
    for index in range(min(length, len(fingerprints))):
        if fingerprints[index][0] in STATEFUL_KINDS:
            return index
    return min(length, len(fingerprints))


def group_id_for(members: tuple[str, ...]) -> str:
    """Deterministic group id: derived from the smallest member id.

    A query belongs to at most one group, so the minimum member names
    the group uniquely — and deterministically across re-planning
    workers in the distributed runtime.
    """
    return f"sh.{min(members)}"


def find_groups(
    specs: list[QuerySpec],
    *,
    allow_stateful: bool = True,
) -> list[tuple[tuple[str, ...], int]]:
    """Group queries by fingerprinted shared prefixes.

    Queries are bucketed by (input stream set, head fingerprint) — equal
    stream sets keep foreign streams from leaking through a shared
    prefix's pass-through filters — and each bucket of two or more
    shares its members' longest common fingerprint prefix.  With
    ``allow_stateful=False`` the prefix is clipped to the leading
    stateless run (dynamic re-sharing at a quiescent point must not
    fabricate shared window state).

    Returns ``(sorted member ids, prefix length)`` per group, sorted by
    group id for determinism.
    """
    buckets: dict[tuple, list[tuple[str, tuple[tuple, ...]]]] = {}
    for spec in specs:
        fps = spec.operator_fingerprints()
        key = (frozenset(spec.input_streams), fps[0])
        buckets.setdefault(key, []).append((spec.query_id, fps))
    groups: list[tuple[tuple[str, ...], int]] = []
    for bucket in buckets.values():
        if len(bucket) < 2:
            continue
        prefix = len(bucket[0][1])
        base = bucket[0][1]
        for __, fps in bucket[1:]:
            common = 0
            for a, b in zip(base, fps):
                if a != b:
                    break
                common += 1
            prefix = min(prefix, common)
        if not allow_stateful:
            prefix = stateless_prefix_len(base, prefix)
        if prefix < 1:
            continue
        members = tuple(sorted(qid for qid, __ in bucket))
        groups.append((members, prefix))
    return sorted(groups, key=lambda g: group_id_for(g[0]))


# ---------------------------------------------------------------------------
# Rewrite
# ---------------------------------------------------------------------------
def build_group(
    members: tuple[str, ...],
    prefix_len: int,
    specs: dict[str, QuerySpec],
    plans: dict[str, QueryPlan],
    catalog: StreamCatalog,
) -> SharedGroup:
    """Rewrite one group into a shared fragment plus per-member taps.

    ``plans`` must hold each member's *canonical* plan
    (:meth:`QuerySpec.build_canonical_plan`): tap fragments slice those
    operator instances directly so stateful suffix state is preserved
    across re-shares, while the shared prefix is built fresh under the
    group id (from the smallest member's spec — all members' prefixes
    fingerprint equal, so any representative is semantically valid).
    """
    members = tuple(sorted(members))
    gid = group_id_for(members)
    rep = specs[members[0]]
    prefix_ops = rep.build_canonical_plan(catalog, query_id=gid).operators[
        :prefix_len
    ]
    fps = tuple(op.fingerprint() for op in prefix_ops)
    stateful = any(fp[0] in STATEFUL_KINDS for fp in fps)
    shared = SharedFragment(
        fragment_id=f"{gid}#f0",
        query_id=gid,
        index=0,
        operators=prefix_ops,
        members=members,
        stateful=stateful,
    )
    taps: dict[str, Fragment] = {}
    for qid in members:
        own_prefix = plans[qid].operators[:prefix_len]
        rename = {
            f"{shared_op.name}.out": f"{own_op.name}.out"
            for shared_op, own_op, fp in zip(prefix_ops, own_prefix, fps)
            if fp[0] in _RENAMING_KINDS
        }
        tap = TapOperator(f"{qid}.tap", qid, rename)
        taps[qid] = Fragment(
            fragment_id=f"{qid}#tap",
            query_id=qid,
            index=0,
            operators=[tap, *plans[qid].operators[prefix_len:]],
        )
    return SharedGroup(
        group_id=gid,
        members=members,
        prefix_len=prefix_len,
        input_streams=tuple(rep.input_streams),
        shared=shared,
        taps=taps,
        stateful=stateful,
    )


def plan_shared(
    specs: list[QuerySpec],
    plans: dict[str, QueryPlan],
    catalog: StreamCatalog,
    *,
    allow_stateful: bool = True,
) -> list[SharedGroup]:
    """The full optimizer pass: group eligible specs and rewrite them.

    Callers pass only sharing-eligible queries (plain linear chains —
    partition-parallel deployments keep their own fan-out machinery).
    Returns the groups; queries absent from every group deploy on the
    ordinary unshared path.
    """
    by_id = {spec.query_id: spec for spec in specs}
    return [
        build_group(members, prefix_len, by_id, plans, catalog)
        for members, prefix_len in find_groups(
            specs, allow_stateful=allow_stateful
        )
    ]


# ---------------------------------------------------------------------------
# Monitoring + allocator feedback
# ---------------------------------------------------------------------------
def collect_stats(
    deployments_by_entity: dict[str, dict[str, SharedDeployment]],
    catalog: StreamCatalog,
) -> SharingStats:
    """Summarise every entity's realized sharing for reports."""
    taps: list[int] = []
    saved = 0.0
    queries = 0
    for deployments in deployments_by_entity.values():
        for deployment in deployments.values():
            group = deployment.group
            taps.append(len(group.taps))
            queries += len(group.members)
            saved += group.cpu_saved_estimate(catalog)
    return SharingStats(
        shared_fragments=len(taps),
        shared_queries=queries,
        taps_per_group=tuple(sorted(taps, reverse=True)),
        cpu_saved_estimate=saved,
    )


def reinforce_query_graph(
    graph,
    deployments_by_entity: dict[str, dict[str, SharedDeployment]],
    catalog: StreamCatalog,
) -> int:
    """Feed realized sharing back into query-graph edge weights.

    Members of a realized group get their pairwise edge weight raised by
    the group's shared input byte rate: separating them would make the
    engine re-evaluate the prefix per query *and* re-ship the data, so
    the partitioner should prefer cutting elsewhere.  Returns the number
    of edges reinforced.
    """
    reinforced = 0
    for deployments in deployments_by_entity.values():
        for deployment in deployments.values():
            group = deployment.group
            bonus = sum(
                catalog.schema(s).bytes_per_second
                for s in group.input_streams
            )
            members = group.members
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    if a in graph.vertex_weights and b in graph.vertex_weights:
                        graph.add_edge(a, b, graph.weight(a, b) + bonus)
                        reinforced += 1
    return reinforced
