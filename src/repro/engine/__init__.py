"""A from-scratch single-site stream processing engine.

Each entity in the paper runs "its own stream processing engine"; the
proposed techniques are engine-independent.  This package provides the
engine we install in every simulated entity: push-based operators
(filter, project, map, window join, window aggregate, union), linear
query plans that can be cut into fragments (§4.1), and an executor that
charges operator costs to a simulated processor.
"""

from repro.engine.executor import FragmentRuntime, LocalEngine
from repro.engine.operators import (
    FilterOperator,
    MapOperator,
    Operator,
    ProjectOperator,
    UnionOperator,
    WindowAggregateOperator,
    WindowJoinOperator,
)
from repro.engine.plan import Fragment, QueryPlan

__all__ = [
    "Operator",
    "FilterOperator",
    "ProjectOperator",
    "MapOperator",
    "WindowJoinOperator",
    "WindowAggregateOperator",
    "UnionOperator",
    "QueryPlan",
    "Fragment",
    "LocalEngine",
    "FragmentRuntime",
]
