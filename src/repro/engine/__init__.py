"""A from-scratch single-site stream processing engine.

Each entity in the paper runs "its own stream processing engine"; the
proposed techniques are engine-independent.  This package provides the
engine we install in every simulated entity: push-based operators
(filter, project, map, window join, window aggregate, union), linear
query plans that can be cut into fragments (§4.1), and an executor that
charges operator costs to a simulated processor.

:mod:`repro.engine.partition` adds intra-operator parallelism: a
partitionable stage (exact-match window join or grouped aggregate) can
be split across N parallel fragment instances behind a key-partitioning
router and an order-preserving merge, with skew-triggered hot-key
rebalancing — see ``docs/protocols.md`` §7.
"""

from repro.engine.executor import FragmentRuntime, LocalEngine
from repro.engine.partition import (
    MergeStageOperator,
    PartitionedDeployment,
    PartitionedOperator,
    PartitionRouter,
    PartitionSpec,
    PartitionStageOperator,
    partitionable_stage,
    plan_partitioned,
    redistribute_state,
)
from repro.engine.operators import (
    FilterOperator,
    MapOperator,
    Operator,
    ProjectOperator,
    UnionOperator,
    WindowAggregateOperator,
    WindowJoinOperator,
)
from repro.engine.plan import Fragment, QueryPlan

__all__ = [
    "Operator",
    "FilterOperator",
    "ProjectOperator",
    "MapOperator",
    "WindowJoinOperator",
    "WindowAggregateOperator",
    "UnionOperator",
    "QueryPlan",
    "Fragment",
    "LocalEngine",
    "FragmentRuntime",
    "MergeStageOperator",
    "PartitionRouter",
    "PartitionSpec",
    "PartitionStageOperator",
    "PartitionedDeployment",
    "PartitionedOperator",
    "partitionable_stage",
    "plan_partitioned",
    "redistribute_state",
]
