"""Per-tuple sliding-window running average."""

from __future__ import annotations

from collections import deque

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class SlidingAverageOperator(Operator):
    """Annotate each tuple with the mean of ``attribute`` over the last
    ``window`` seconds (inclusive of the tuple itself).

    The output attribute is ``{attribute}_avg`` — the classic moving
    average a price-alert query compares against.
    """

    def __init__(
        self,
        name: str,
        attribute: str,
        *,
        window: float = 10.0,
        cost_per_tuple: float = 5e-5,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=1.0
        )
        self.attribute = attribute
        self.window = window
        self._entries: deque[tuple[float, float]] = deque()  # (time, value)
        self._sum = 0.0

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._entries and self._entries[0][0] < horizon:
            __, value = self._entries.popleft()
            self._sum -= value

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if self.attribute not in tup.values:
            return [tup]
        self._expire(tup.created_at)
        value = tup.value(self.attribute)
        self._entries.append((tup.created_at, value))
        self._sum += value
        mean = self._sum / len(self._entries)
        return [tup.with_values(**{f"{self.attribute}_avg": mean})]

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: running-sum window maintained in a tight loop."""
        attribute = self.attribute
        out_attr = f"{attribute}_avg"
        window = self.window
        entries = self._entries
        running = self._sum
        out: list[StreamTuple] = []
        append = out.append
        for tup in batch:
            values = tup.values
            if attribute not in values:
                append(tup)
                continue
            created = tup.created_at
            horizon = created - window
            while entries and entries[0][0] < horizon:
                running -= entries.popleft()[1]
            value = values[attribute]
            entries.append((created, value))
            running += value
            append(tup.with_values(**{out_attr: running / len(entries)}))
        self._sum = running
        return out

    def reset_state(self) -> None:
        self._entries.clear()
        self._sum = 0.0
