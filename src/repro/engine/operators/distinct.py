"""Duplicate suppression within a sliding time window."""

from __future__ import annotations

from collections import deque

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class DistinctOperator(Operator):
    """Pass a tuple only if its ``attribute`` value was not seen in the
    last ``window`` seconds (alert de-duplication)."""

    def __init__(
        self,
        name: str,
        attribute: str,
        *,
        window: float = 10.0,
        cost_per_tuple: float = 4e-5,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=0.5
        )
        self.attribute = attribute
        self.window = window
        self._last_seen: dict[float, float] = {}
        self._order: deque[tuple[float, float]] = deque()  # (time, value)

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._order and self._order[0][0] < horizon:
            seen_at, value = self._order.popleft()
            if self._last_seen.get(value) == seen_at:
                del self._last_seen[value]

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if self.attribute not in tup.values:
            return [tup]
        self._expire(tup.created_at)
        value = tup.value(self.attribute)
        duplicate = value in self._last_seen
        self._last_seen[value] = tup.created_at
        self._order.append((tup.created_at, value))
        if duplicate:
            return []
        return [tup]

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: one tight loop over pre-bound window state.

        Sequential by nature (each tuple's verdict depends on the ones
        before it), but the batch path hoists every attribute lookup out
        of the loop.
        """
        attribute = self.attribute
        window = self.window
        last_seen = self._last_seen
        order = self._order
        out: list[StreamTuple] = []
        append = out.append
        for tup in batch:
            values = tup.values
            if attribute not in values:
                append(tup)
                continue
            created = tup.created_at
            horizon = created - window
            while order and order[0][0] < horizon:
                seen_at, seen_value = order.popleft()
                if last_seen.get(seen_value) == seen_at:
                    del last_seen[seen_value]
            value = values[attribute]
            duplicate = value in last_seen
            last_seen[value] = created
            order.append((created, value))
            if not duplicate:
                append(tup)
        return out

    def reset_state(self) -> None:
        self._last_seen.clear()
        self._order.clear()
