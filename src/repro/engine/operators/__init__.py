"""Stream operators: the engine's processing vocabulary."""

from repro.engine.operators.aggregate import WindowAggregateOperator
from repro.engine.operators.base import Operator, OperatorStats
from repro.engine.operators.distinct import DistinctOperator
from repro.engine.operators.filterop import FilterOperator
from repro.engine.operators.join import WindowJoinOperator
from repro.engine.operators.mapop import MapOperator
from repro.engine.operators.project import ProjectOperator
from repro.engine.operators.sample import SampleOperator
from repro.engine.operators.sliding import SlidingAverageOperator
from repro.engine.operators.topk import TopKOperator
from repro.engine.operators.union import UnionOperator

__all__ = [
    "Operator",
    "OperatorStats",
    "FilterOperator",
    "ProjectOperator",
    "MapOperator",
    "WindowJoinOperator",
    "WindowAggregateOperator",
    "UnionOperator",
    "TopKOperator",
    "DistinctOperator",
    "SampleOperator",
    "SlidingAverageOperator",
]
