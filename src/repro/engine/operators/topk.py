"""Top-K operator over tumbling windows.

Emits the K tuples with the largest ``attribute`` values when each
window closes — the "hottest symbols" style query of stock tickers.
"""

from __future__ import annotations

import heapq
import math

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class TopKOperator(Operator):
    """Keep the K largest-``attribute`` tuples per tumbling window."""

    def __init__(
        self,
        name: str,
        attribute: str,
        *,
        k: int = 10,
        window: float = 10.0,
        cost_per_tuple: float = 8e-5,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if window <= 0:
            raise ValueError("window must be positive")
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=0.1
        )
        self.attribute = attribute
        self.k = k
        self.window = window
        self._current_window: int | None = None
        # min-heap of (value, seq, tuple); seq breaks value ties
        self._heap: list[tuple[float, int, StreamTuple]] = []

    def _flush(self) -> list[StreamTuple]:
        winners = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        self._heap.clear()
        return [tup for __, __, tup in winners]

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if self.attribute not in tup.values:
            return [tup]
        window_index = math.floor(tup.created_at / self.window)
        out: list[StreamTuple] = []
        if self._current_window is None:
            self._current_window = window_index
        elif window_index > self._current_window:
            out = self._flush()
            self._current_window = window_index
        entry = (tup.value(self.attribute), tup.seq, tup)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
        return out

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: heap maintenance in one loop, window flushes
        inline exactly where the per-tuple path would emit them."""
        attribute = self.attribute
        window = self.window
        k = self.k
        heap = self._heap
        floor = math.floor
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace
        out: list[StreamTuple] = []
        for tup in batch:
            values = tup.values
            if attribute not in values:
                out.append(tup)
                continue
            window_index = floor(tup.created_at / window)
            if self._current_window is None:
                self._current_window = window_index
            elif window_index > self._current_window:
                out.extend(self._flush())
                self._current_window = window_index
            entry = (values[attribute], tup.seq, tup)
            if len(heap) < k:
                heappush(heap, entry)
            elif entry[0] > heap[0][0]:
                heapreplace(heap, entry)
        return out

    def reset_state(self) -> None:
        self._current_window = None
        self._heap.clear()
