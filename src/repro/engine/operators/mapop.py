"""Map operator: per-tuple transformation via a user function."""

from __future__ import annotations

from typing import Callable

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple

MapFn = Callable[[StreamTuple], StreamTuple | None]


class MapOperator(Operator):
    """Apply ``fn`` to every tuple; ``None`` results are dropped.

    A map with an occasionally-``None`` function doubles as a complex
    (non-interval) predicate, which is how we model user-defined filters
    whose selectivity can only be *observed*, not computed — the case
    that motivates the Adaptation Module's statistics collection.
    """

    def __init__(
        self,
        name: str,
        fn: MapFn,
        *,
        cost_per_tuple: float = 1e-4,
        estimated_selectivity: float = 1.0,
    ) -> None:
        super().__init__(
            name,
            cost_per_tuple=cost_per_tuple,
            estimated_selectivity=estimated_selectivity,
        )
        self.fn = fn

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        result = self.fn(tup)
        if result is None:
            return []
        return [result]

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: one pass of ``fn``, dropped ``None`` results."""
        fn = self.fn
        return [result for result in map(fn, batch) if result is not None]
