"""Operator base class and per-operator statistics.

Operators are push-based: ``process(tup, now)`` consumes one input tuple
and returns zero or more output tuples.  Every operator declares a
nominal CPU cost per input tuple and an estimated selectivity (expected
outputs per input); both feed the placement and ordering optimisers, and
both are tracked empirically so the Adaptation Module (§4.2) can react
when reality drifts from the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streams.tuples import StreamTuple


@dataclass(slots=True)
class OperatorStats:
    """Observed input/output counts for one operator instance."""

    tuples_in: int = 0
    tuples_out: int = 0

    @property
    def observed_selectivity(self) -> float:
        """Outputs per input observed so far (estimate when no input yet)."""
        if not self.tuples_in:
            return float("nan")
        return self.tuples_out / self.tuples_in


class Operator:
    """Base class for all stream operators.

    Args:
        name: Instance name (unique within its plan).
        cost_per_tuple: Nominal CPU seconds charged per input tuple.
        estimated_selectivity: A-priori expected outputs per input.
    """

    def __init__(
        self,
        name: str,
        *,
        cost_per_tuple: float = 1e-4,
        estimated_selectivity: float = 1.0,
    ) -> None:
        if cost_per_tuple < 0:
            raise ValueError("cost_per_tuple must be non-negative")
        self.name = name
        self.cost_per_tuple = cost_per_tuple
        self.estimated_selectivity = estimated_selectivity
        self.stats = OperatorStats()

    # ------------------------------------------------------------------
    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        """Consume one tuple; must be implemented by subclasses."""
        raise NotImplementedError

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Consume a whole batch; returns the concatenated outputs.

        Correctness contract: the result must equal concatenating
        ``process(tup, now)`` over the batch in order — batch execution
        is an optimisation, never a semantic change.  The base version
        is that exact loop; operators override it with vectorized
        kernels (comprehensions, pre-bound locals) that skip the
        per-tuple dispatch and list allocations.
        """
        out: list[StreamTuple] = []
        extend = out.extend
        process = self.process
        for tup in batch:
            extend(process(tup, now))
        return out

    def cost(self, tup: StreamTuple) -> float:
        """CPU seconds this input tuple costs (default: the nominal cost)."""
        return self.cost_per_tuple

    def apply(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        """``process`` wrapped with statistics accounting."""
        self.stats.tuples_in += 1
        out = self.process(tup, now)
        self.stats.tuples_out += len(out)
        return out

    def apply_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """``process_batch`` wrapped with (bulk) statistics accounting."""
        self.stats.tuples_in += len(batch)
        out = self.process_batch(batch, now)
        self.stats.tuples_out += len(out)
        return out

    @property
    def selectivity(self) -> float:
        """Best current selectivity: observed if available, else estimate."""
        observed = self.stats.observed_selectivity
        if observed != observed:  # NaN: no observations yet
            return self.estimated_selectivity
        return observed

    def fingerprint(self) -> tuple:
        """Canonical structural fingerprint of this operator.

        Two operators with equal fingerprints are guaranteed to produce
        identical output sequences on identical input sequences, so the
        shared-computation optimizer may evaluate one instance on behalf
        of both.  The base fingerprint embeds the instance name (which
        carries the owning query id) and therefore never matches across
        queries — operators must opt in to sharing by overriding this
        with a name-free structural shape.
        """
        return ("opaque", type(self).__name__, self.name)

    def advance_window(self, window_index: int) -> list[StreamTuple]:
        """Advance to ``window_index``, emitting any closing outputs.

        Punctuation hook for partitioned execution: the partition router
        broadcasts window boundaries so every parallel clone of a
        windowed operator closes its window at the same global point.
        Stateless operators have no window — the default is a no-op.
        """
        return []

    def reset_state(self) -> None:
        """Discard operator state (windows); used when a fragment moves."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
