"""Projection operator: keep a subset of attributes, shrinking tuples."""

from __future__ import annotations

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class ProjectOperator(Operator):
    """Project tuples down to ``attributes``.

    Projection reduces tuple *size*, which matters to dissemination: the
    paper's ancestors may "transform" data before forwarding, and the
    byte savings are what E4 measures.
    """

    def __init__(
        self,
        name: str,
        attributes: list[str],
        *,
        bytes_per_attribute: float = 8.0,
        cost_per_tuple: float = 2e-5,
    ) -> None:
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=1.0
        )
        if not attributes:
            raise ValueError("projection must keep at least one attribute")
        self.attributes = list(attributes)
        self.bytes_per_attribute = bytes_per_attribute

    def fingerprint(self) -> tuple:
        """Structural shape: kept attributes (ordered) and output sizing."""
        return (
            "project",
            tuple(self.attributes),
            self.bytes_per_attribute,
        )

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        kept = [a for a in self.attributes if a in tup.values]
        if not kept:
            return [tup]
        size = self.bytes_per_attribute * len(kept)
        return [tup.project(kept, size=size)]

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: project each tuple without per-tuple dispatch."""
        attributes = self.attributes
        bytes_per_attribute = self.bytes_per_attribute
        out: list[StreamTuple] = []
        append = out.append
        for tup in batch:
            values = tup.values
            kept = [a for a in attributes if a in values]
            if not kept:
                append(tup)
            else:
                append(
                    tup.project(kept, size=bytes_per_attribute * len(kept))
                )
        return out
