"""Selection operator driven by a data-interest predicate."""

from __future__ import annotations

from repro.engine.operators.base import Operator
from repro.interest.predicates import StreamInterest
from repro.streams.tuples import StreamTuple


class FilterOperator(Operator):
    """Keep tuples whose values satisfy a :class:`StreamInterest`.

    The same predicate model expresses query selections and the early
    filters installed at dissemination-tree ancestors, so a query's
    interest literally *is* its leading filter.
    """

    def __init__(
        self,
        name: str,
        interest: StreamInterest,
        *,
        cost_per_tuple: float = 5e-5,
        estimated_selectivity: float | None = None,
    ) -> None:
        super().__init__(
            name,
            cost_per_tuple=cost_per_tuple,
            estimated_selectivity=(
                estimated_selectivity if estimated_selectivity is not None else 0.5
            ),
        )
        self.interest = interest

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if tup.stream_id != self.interest.stream_id:
            # Tuples of other streams pass through untouched (a filter
            # constrains only its own stream).
            return [tup]
        if self.interest.matches_values(tup.values):
            return [tup]
        return []
