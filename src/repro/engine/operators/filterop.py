"""Selection operator driven by a data-interest predicate."""

from __future__ import annotations

from repro.engine.operators.base import Operator
from repro.interest.compiled import MatchFn, compile_interest
from repro.interest.predicates import StreamInterest
from repro.streams.tuples import StreamTuple


class FilterOperator(Operator):
    """Keep tuples whose values satisfy a :class:`StreamInterest`.

    The same predicate model expresses query selections and the early
    filters installed at dissemination-tree ancestors, so a query's
    interest literally *is* its leading filter.  The interest is
    compiled once (see :mod:`repro.interest.compiled`) and both the
    per-tuple and the batch path run the codegen'd kernel.
    """

    def __init__(
        self,
        name: str,
        interest: StreamInterest,
        *,
        cost_per_tuple: float = 5e-5,
        estimated_selectivity: float | None = None,
    ) -> None:
        super().__init__(
            name,
            cost_per_tuple=cost_per_tuple,
            estimated_selectivity=(
                estimated_selectivity if estimated_selectivity is not None else 0.5
            ),
        )
        self._interest = interest
        self._match: MatchFn = compile_interest(interest)

    @property
    def interest(self) -> StreamInterest:
        """The selection predicate (reassigning recompiles the kernel)."""
        return self._interest

    @interest.setter
    def interest(self, interest: StreamInterest) -> None:
        self._interest = interest
        self._match = compile_interest(interest)

    def fingerprint(self) -> tuple:
        """Structural shape: the interest's canonical constraint tuple.

        Constraint order is normalised inside the interest fingerprint
        (conjunction commutes), so equal selections across different
        queries fingerprint equal and can share one evaluation.
        """
        return ("filter", *self._interest.fingerprint())

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if tup.stream_id != self._interest.stream_id:
            # Tuples of other streams pass through untouched (a filter
            # constrains only its own stream).
            return [tup]
        if self._match(tup.values):
            return [tup]
        return []

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: one comprehension over the compiled predicate."""
        stream_id = self._interest.stream_id
        match = self._match
        return [
            tup
            for tup in batch
            if tup.stream_id != stream_id or match(tup.values)
        ]
