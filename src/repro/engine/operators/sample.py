"""Deterministic Bernoulli sampling."""

from __future__ import annotations

import zlib

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class SampleOperator(Operator):
    """Keep each tuple with fixed ``probability``.

    The keep/drop decision hashes ``(name, stream, seq)`` so results are
    reproducible and two samplers with different names decorrelate.
    """

    def __init__(
        self,
        name: str,
        probability: float,
        *,
        cost_per_tuple: float = 1e-5,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        super().__init__(
            name,
            cost_per_tuple=cost_per_tuple,
            estimated_selectivity=probability,
        )
        self.probability = probability

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        key = f"{self.name}|{tup.stream_id}|{tup.seq}".encode()
        draw = (zlib.crc32(key) & 0xFFFFFFFF) / 2**32
        if draw < self.probability:
            return [tup]
        return []

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: hash-draw every tuple in one comprehension."""
        name = self.name
        threshold = self.probability * 2**32
        crc32 = zlib.crc32
        return [
            tup
            for tup in batch
            if (crc32(f"{name}|{tup.stream_id}|{tup.seq}".encode()) & 0xFFFFFFFF)
            < threshold
        ]
