"""Sliding-window equi-join over two streams.

The paper's discussion of why operators cannot migrate *between*
entities names the window join explicitly: its "synopsis" state is
engine-internal.  Our join keeps per-stream time windows (the synopsis),
so moving it between processors requires :meth:`reset_state` — the
state-loss cost that intra-entity placement must weigh.
"""

from __future__ import annotations

from collections import deque

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class WindowJoinOperator(Operator):
    """Join tuples of ``left_stream`` and ``right_stream`` on one attribute.

    Two tuples join when they arrived within ``window`` seconds of each
    other and their join-attribute values differ by at most
    ``tolerance``.  Output values carry ``left.``/``right.`` prefixes.

    The per-tuple CPU cost grows with the probed window size, so a join
    is the expensive, stateful fragment in placement experiments.
    """

    def __init__(
        self,
        name: str,
        left_stream: str,
        right_stream: str,
        attribute: str,
        *,
        window: float = 5.0,
        tolerance: float = 0.0,
        cost_per_tuple: float = 2e-4,
        cost_per_probe: float = 2e-6,
        estimated_selectivity: float = 0.2,
    ) -> None:
        super().__init__(
            name,
            cost_per_tuple=cost_per_tuple,
            estimated_selectivity=estimated_selectivity,
        )
        if left_stream == right_stream:
            raise ValueError("window join requires two distinct streams")
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.attribute = attribute
        self.window = window
        self.tolerance = tolerance
        self.cost_per_probe = cost_per_probe
        self._windows: dict[str, deque[StreamTuple]] = {
            left_stream: deque(),
            right_stream: deque(),
        }

    # ------------------------------------------------------------------
    def _expire(self, now: float) -> None:
        horizon = now - self.window
        for window in self._windows.values():
            while window and window[0].created_at < horizon:
                window.popleft()

    def window_size(self, stream_id: str) -> int:
        """Current number of buffered tuples for one input stream."""
        return len(self._windows[stream_id])

    def cost(self, tup: StreamTuple) -> float:
        other = (
            self.right_stream
            if tup.stream_id == self.left_stream
            else self.left_stream
        )
        probes = len(self._windows.get(other, ()))
        return self.cost_per_tuple + self.cost_per_probe * probes

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if tup.stream_id not in self._windows:
            return [tup]
        self._expire(now)
        is_left = tup.stream_id == self.left_stream
        other_id = self.right_stream if is_left else self.left_stream
        out: list[StreamTuple] = []
        key = tup.value(self.attribute)
        for other in self._windows[other_id]:
            if abs(other.value(self.attribute) - key) <= self.tolerance:
                left, right = (tup, other) if is_left else (other, tup)
                values = {f"left.{k}": v for k, v in left.values.items()}
                values.update({f"right.{k}": v for k, v in right.values.items()})
                out.append(
                    StreamTuple(
                        stream_id=f"{self.name}.out",
                        seq=self.stats.tuples_out + len(out),
                        created_at=min(left.created_at, right.created_at),
                        values=values,
                        size=left.size + right.size,
                    )
                )
        self._windows[tup.stream_id].append(tup)
        return out

    def reset_state(self) -> None:
        for window in self._windows.values():
            window.clear()
