"""Sliding-window equi-join over two streams.

The paper's discussion of why operators cannot migrate *between*
entities names the window join explicitly: its "synopsis" state is
engine-internal.  Our join keeps per-stream time windows (the synopsis),
so moving it between processors requires :meth:`reset_state` — the
state-loss cost that intra-entity placement must weigh.
"""

from __future__ import annotations

from collections import deque

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class WindowJoinOperator(Operator):
    """Join tuples of ``left_stream`` and ``right_stream`` on one attribute.

    Two tuples join when they arrived within ``window`` seconds of each
    other and their join-attribute values differ by at most
    ``tolerance``.  Output values carry ``left.``/``right.`` prefixes.

    The per-tuple CPU cost grows with the probed window size, so a join
    is the expensive, stateful fragment in placement experiments.
    """

    def __init__(
        self,
        name: str,
        left_stream: str,
        right_stream: str,
        attribute: str,
        *,
        window: float = 5.0,
        tolerance: float = 0.0,
        cost_per_tuple: float = 2e-4,
        cost_per_probe: float = 2e-6,
        estimated_selectivity: float = 0.2,
    ) -> None:
        super().__init__(
            name,
            cost_per_tuple=cost_per_tuple,
            estimated_selectivity=estimated_selectivity,
        )
        if left_stream == right_stream:
            raise ValueError("window join requires two distinct streams")
        self.left_stream = left_stream
        self.right_stream = right_stream
        self.attribute = attribute
        self.window = window
        self.tolerance = tolerance
        self.cost_per_probe = cost_per_probe
        self._windows: dict[str, deque[StreamTuple]] = {
            left_stream: deque(),
            right_stream: deque(),
        }
        # Output sequence counter; advances with every emitted join
        # result so batch and per-tuple execution number outputs alike.
        self._emit_seq = 0

    # ------------------------------------------------------------------
    def _expire(self, now: float) -> None:
        horizon = now - self.window
        for window in self._windows.values():
            while window and window[0].created_at < horizon:
                window.popleft()

    def window_size(self, stream_id: str) -> int:
        """Current number of buffered tuples for one input stream."""
        return len(self._windows[stream_id])

    def fingerprint(self) -> tuple:
        """Structural shape: streams (sided), key, window and tolerance.

        Left/right order is part of the shape — swapping sides renames
        the ``left.``/``right.`` output attributes, so mirrored joins
        must not share one instance.  Costs are excluded: they scale
        accounting, never outputs.
        """
        return (
            "join",
            self.left_stream,
            self.right_stream,
            self.attribute,
            self.window,
            self.tolerance,
        )

    def cost(self, tup: StreamTuple) -> float:
        other = (
            self.right_stream
            if tup.stream_id == self.left_stream
            else self.left_stream
        )
        probes = len(self._windows.get(other, ()))
        return self.cost_per_tuple + self.cost_per_probe * probes

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if tup.stream_id not in self._windows:
            return [tup]
        self._expire(now)
        is_left = tup.stream_id == self.left_stream
        other_id = self.right_stream if is_left else self.left_stream
        out: list[StreamTuple] = []
        key = tup.value(self.attribute)
        for other in self._windows[other_id]:
            if abs(other.value(self.attribute) - key) <= self.tolerance:
                left, right = (tup, other) if is_left else (other, tup)
                values = {f"left.{k}": v for k, v in left.values.items()}
                values.update({f"right.{k}": v for k, v in right.values.items()})
                out.append(
                    StreamTuple(
                        stream_id=f"{self.name}.out",
                        seq=self._emit_seq,
                        created_at=min(left.created_at, right.created_at),
                        values=values,
                        size=left.size + right.size,
                    )
                )
                self._emit_seq += 1
        self._windows[tup.stream_id].append(tup)
        return out

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: probe/insert the whole batch with pre-bound state.

        Expiry must run before *every* probe, exactly as the per-tuple
        path does: ``now`` is shared across the batch, but a tuple whose
        ``created_at`` already lies past the horizon gets inserted and
        then expired before the next probe — skipping mid-batch expiry
        would let such stale tuples join.  The inlined check is O(1)
        when nothing is stale, so the batch path still avoids all
        per-tuple dispatch.
        """
        windows = self._windows
        left_stream = self.left_stream
        right_stream = self.right_stream
        attribute = self.attribute
        tolerance = self.tolerance
        out_stream = f"{self.name}.out"
        out: list[StreamTuple] = []
        append = out.append
        horizon = now - self.window
        left_window = windows[left_stream]
        right_window = windows[right_stream]
        for tup in batch:
            stream_id = tup.stream_id
            if stream_id not in windows:
                append(tup)
                continue
            while left_window and left_window[0].created_at < horizon:
                left_window.popleft()
            while right_window and right_window[0].created_at < horizon:
                right_window.popleft()
            is_left = stream_id == left_stream
            other_id = right_stream if is_left else left_stream
            key = tup.value(attribute)
            for other in windows[other_id]:
                if abs(other.value(attribute) - key) <= tolerance:
                    left, right = (tup, other) if is_left else (other, tup)
                    values = {
                        f"left.{k}": v for k, v in left.values.items()
                    }
                    values.update(
                        {f"right.{k}": v for k, v in right.values.items()}
                    )
                    append(
                        StreamTuple(
                            stream_id=out_stream,
                            seq=self._emit_seq,
                            created_at=min(
                                left.created_at, right.created_at
                            ),
                            values=values,
                            size=left.size + right.size,
                        )
                    )
                    self._emit_seq += 1
            windows[stream_id].append(tup)
        return out

    def reset_state(self) -> None:
        for window in self._windows.values():
            window.clear()

    # --- partitioned execution hooks ----------------------------------
    def clone(self) -> "WindowJoinOperator":
        """A fresh same-config instance (empty windows, seq 0)."""
        return WindowJoinOperator(
            self.name,
            self.left_stream,
            self.right_stream,
            self.attribute,
            window=self.window,
            tolerance=self.tolerance,
            cost_per_tuple=self.cost_per_tuple,
            cost_per_probe=self.cost_per_probe,
            estimated_selectivity=self.estimated_selectivity,
        )

    def snapshot_windows(self) -> dict[str, list[StreamTuple]]:
        """The buffered window contents, per input stream."""
        return {
            stream_id: list(window)
            for stream_id, window in self._windows.items()
        }

    def load_windows(self, windows: dict[str, list[StreamTuple]]) -> None:
        """Replace the window contents (skew-rebalance redistribution)."""
        for stream_id, window in self._windows.items():
            window.clear()
            window.extend(windows.get(stream_id, ()))
