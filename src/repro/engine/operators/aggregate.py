"""Tumbling-window aggregation, optionally grouped.

Emits one tuple per (window, group) when a window closes — detected on
the arrival of the first tuple belonging to a later window, the standard
low-watermark trick for in-order streams.
"""

from __future__ import annotations

import math
from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple

SUM = "sum"
COUNT = "count"
AVG = "avg"
MIN = "min"
MAX = "max"
_FUNCTIONS = (SUM, COUNT, AVG, MIN, MAX)


class WindowAggregateOperator(Operator):
    """Aggregate ``attribute`` over tumbling windows of ``window`` seconds.

    Args:
        name: Operator instance name.
        attribute: The attribute aggregated.
        fn: One of ``sum``, ``count``, ``avg``, ``min``, ``max``.
        window: Tumbling window length in seconds.
        group_by: Optional attribute whose value partitions the window.
    """

    def __init__(
        self,
        name: str,
        attribute: str,
        *,
        fn: str = AVG,
        window: float = 10.0,
        group_by: str | None = None,
        cost_per_tuple: float = 6e-5,
    ) -> None:
        if fn not in _FUNCTIONS:
            raise ValueError(f"unknown aggregate {fn!r}; pick from {_FUNCTIONS}")
        if window <= 0:
            raise ValueError("window must be positive")
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=0.1
        )
        self.attribute = attribute
        self.fn = fn
        self.window = window
        self.group_by = group_by
        self._current_window: int | None = None
        # group key -> (count, sum, min, max)
        self._accumulators: dict[float, list[float]] = {}
        self._emit_seq = 0

    # ------------------------------------------------------------------
    def _flush(self, window_index: int) -> list[StreamTuple]:
        out = []
        window_end = (window_index + 1) * self.window
        for group, (count, total, lo, hi) in sorted(self._accumulators.items()):
            if self.fn == SUM:
                result = total
            elif self.fn == COUNT:
                result = count
            elif self.fn == AVG:
                result = total / count
            elif self.fn == MIN:
                result = lo
            else:
                result = hi
            values = {self.fn: result, "window_end": window_end}
            if self.group_by is not None:
                values[self.group_by] = group
            out.append(
                StreamTuple(
                    stream_id=f"{self.name}.out",
                    seq=self._emit_seq,
                    created_at=window_end,
                    values=values,
                    size=8.0 * len(values),
                )
            )
            self._emit_seq += 1
        self._accumulators.clear()
        return out

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if self.attribute not in tup.values:
            return [tup]
        window_index = math.floor(tup.created_at / self.window)
        out: list[StreamTuple] = []
        if self._current_window is None:
            self._current_window = window_index
        elif window_index > self._current_window:
            out = self._flush(self._current_window)
            self._current_window = window_index
        group = tup.values.get(self.group_by, 0.0) if self.group_by else 0.0
        value = tup.value(self.attribute)
        acc = self._accumulators.get(group)
        if acc is None:
            self._accumulators[group] = [1, value, value, value]
        else:
            acc[0] += 1
            acc[1] += value
            acc[2] = min(acc[2], value)
            acc[3] = max(acc[3], value)
        return out

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: accumulate the whole batch, flushing windows
        inline exactly where the per-tuple path would."""
        attribute = self.attribute
        window = self.window
        group_by = self.group_by
        accumulators = self._accumulators
        floor = math.floor
        out: list[StreamTuple] = []
        for tup in batch:
            values = tup.values
            if attribute not in values:
                out.append(tup)
                continue
            window_index = floor(tup.created_at / window)
            if self._current_window is None:
                self._current_window = window_index
            elif window_index > self._current_window:
                out.extend(self._flush(self._current_window))
                self._current_window = window_index
            group = values.get(group_by, 0.0) if group_by else 0.0
            value = values[attribute]
            acc = accumulators.get(group)
            if acc is None:
                accumulators[group] = [1, value, value, value]
            else:
                acc[0] += 1
                acc[1] += value
                if value < acc[2]:
                    acc[2] = value
                if value > acc[3]:
                    acc[3] = value
        return out

    def fingerprint(self) -> tuple:
        """Structural shape: attribute, function, window and grouping.

        Cost overrides are excluded — two aggregates with equal shape
        produce identical output sequences regardless of their nominal
        CPU charge.
        """
        return ("agg", self.attribute, self.fn, self.window, self.group_by)

    def advance_window(self, window_index: int) -> list[StreamTuple]:
        """Close windows up to ``window_index`` (exclusive) and emit.

        Partitioned-execution punctuation: the router broadcasts the
        window boundary it observed, and every parallel clone flushes
        the same window even if it saw no tuple past the boundary.  A
        clone that never opened a window just records the new watermark.
        """
        out: list[StreamTuple] = []
        if self._current_window is not None and window_index > self._current_window:
            out = self._flush(self._current_window)
        self._current_window = window_index
        return out

    def reset_state(self) -> None:
        self._current_window = None
        self._accumulators.clear()

    # --- partitioned execution hooks ----------------------------------
    def clone(self) -> "WindowAggregateOperator":
        """A fresh same-config instance (no accumulators, seq 0)."""
        return WindowAggregateOperator(
            self.name,
            self.attribute,
            fn=self.fn,
            window=self.window,
            group_by=self.group_by,
            cost_per_tuple=self.cost_per_tuple,
        )

    def snapshot_groups(
        self,
    ) -> tuple[int | None, dict[float, list[float]]]:
        """The watermark and per-group accumulators, copied out."""
        return self._current_window, {
            group: list(acc) for group, acc in self._accumulators.items()
        }

    def load_groups(
        self,
        current_window: int | None,
        accumulators: dict[float, list[float]],
    ) -> None:
        """Replace the aggregation state (skew-rebalance redistribution)."""
        self._current_window = current_window
        self._accumulators = {
            group: list(acc) for group, acc in accumulators.items()
        }
