"""Union operator: merge several input streams into one output stream."""

from __future__ import annotations

from dataclasses import replace

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class UnionOperator(Operator):
    """Pass tuples from any of ``input_streams`` through, relabelled.

    Used for multi-exchange queries ("all trades of symbol X on any
    exchange"): one downstream chain consumes a single merged stream.
    """

    def __init__(
        self,
        name: str,
        input_streams: list[str],
        *,
        cost_per_tuple: float = 1e-5,
    ) -> None:
        super().__init__(
            name, cost_per_tuple=cost_per_tuple, estimated_selectivity=1.0
        )
        if len(input_streams) < 2:
            raise ValueError("union needs at least two input streams")
        self.input_streams = list(input_streams)

    def fingerprint(self) -> tuple:
        """Structural shape: the merged stream set (order-free).

        Relabelling depends only on membership, so unions over the same
        streams in any declaration order fingerprint equal.
        """
        return ("union", tuple(sorted(self.input_streams)))

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        if tup.stream_id not in self.input_streams:
            return [tup]
        return [replace(tup, stream_id=f"{self.name}.out")]

    def process_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Batch kernel: relabel matching tuples in one comprehension."""
        streams = self.input_streams
        out_id = f"{self.name}.out"
        return [
            tup
            if tup.stream_id not in streams
            else replace(tup, stream_id=out_id)
            for tup in batch
        ]
