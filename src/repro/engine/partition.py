"""Intra-operator parallelism: partitioned operator fragments.

Allocation and placement are query-granularity, as in the paper
(§3.2.2/§4.1), so one hot window join or grouped aggregate caps at a
single processor.  This module splits such a *stage* across N parallel
fragment instances — the split/merge scheme of *Parallelizing Windowed
Stream Joins in a Shared-Nothing Cluster* mapped onto our fragments:

* :class:`PartitionSpec` — a hash or key-range partition function over
  the stage's key attribute (join key, or the aggregate's group), plus
  explicit per-key ``overrides`` that skew rebalancing installs;
* :class:`PartitionRouter` — runs where the pre-stage fragment ends and
  routes each stage input to exactly one partition, emitting an in-band
  *schedule* control stream towards the merge so the global event order
  survives the fan-out;
* :class:`PartitionStageOperator` — one per partition, wrapping a fresh
  clone of the stateful operator; it envelopes every output with its
  ``(partition, event, index)`` identity and appends an *ack* marker
  carrying the event's output count;
* :class:`MergeStageOperator` — reassembles per-partition events and
  releases them in the router's global ticket order, renumbering stage
  outputs with one global sequence counter, so the merged stream is
  bit-identical to the single-fragment operator's;
* :class:`PartitionedOperator` — the synchronous in-process composition
  of all of the above, the drop-in the equivalence property suite runs
  against the plain operator.

The protocol is deliberately in-band: every schedule, flush, and ack
marker is an ordinary :class:`~repro.streams.tuples.StreamTuple`, so
the same wiring works over simulator network sends, live asyncio
channels, and the distributed wire codec.  Ordering is *explicit*, not
assumed: the simulator's network delays scale with tuple size, so a
small control tuple legally overtakes a bigger data tuple on the same
link.  Each router→partition event therefore carries a per-partition
sequence number (partitions reorder held events before processing),
each partition output names its event and position, and each ack names
its event and output count — the merge needs only *eventual* delivery.

Tumbling aggregates additionally need *punctuation*: when the router's
watermark crosses a window boundary it broadcasts one flush control to
every partition (a single global ticket) before routing the boundary
tuple, so all clones close the window together and the merge can
interleave the per-partition flush outputs in global group order.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass, field, replace

from repro.engine.operators.aggregate import WindowAggregateOperator
from repro.engine.operators.base import Operator
from repro.engine.operators.join import WindowJoinOperator
from repro.engine.plan import Fragment, QueryPlan
from repro.streams.tuples import StreamTuple

HASH = "hash"
RANGE = "range"
_SCHEMES = (HASH, RANGE)

JOIN_STAGE = "join"
AGGREGATE_STAGE = "aggregate"

# Serialised size charged for schedule/flush/ack control tuples.
CONTROL_SIZE = 16.0


def sched_stream(stage: str) -> str:
    """Router → merge schedule control stream for stage ``stage``."""
    return f"{stage}.__sched__"


def flush_stream(stage: str) -> str:
    """Router → partitions window-flush broadcast stream."""
    return f"{stage}.__flush__"


def ack_stream(stage: str, index: int) -> str:
    """Partition ``index`` → merge end-of-event marker stream."""
    return f"{stage}.__ack__{index}"


@dataclass(frozen=True)
class PartitionSpec:
    """A total partition function over the stage's key space.

    Attributes:
        key: The partitioning attribute (join key / aggregate group).
        parts: Number of parallel partitions (>= 1).
        scheme: ``hash`` (value-stable numeric hash) or ``range``
            (``boundaries`` split the key space into ``parts`` buckets).
        boundaries: ``parts - 1`` ascending split points (range scheme).
        overrides: Explicit ``(key value, partition)`` reassignments —
            the mechanism skew rebalancing uses to move hot keys without
            touching the base function, so coverage stays total.
    """

    key: str
    parts: int
    scheme: str = HASH
    boundaries: tuple[float, ...] | None = None
    overrides: tuple[tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        if self.parts < 1:
            raise ValueError("parts must be >= 1")
        if self.scheme not in _SCHEMES:
            raise ValueError(f"scheme must be one of {_SCHEMES}")
        if self.scheme == RANGE:
            if self.boundaries is None or len(self.boundaries) != self.parts - 1:
                raise ValueError("range scheme needs parts - 1 boundaries")
            if list(self.boundaries) != sorted(self.boundaries):
                raise ValueError("range boundaries must be ascending")
        for key_value, part in self.overrides:
            if not 0 <= part < self.parts:
                raise ValueError(
                    f"override {key_value!r} -> {part} outside 0..{self.parts - 1}"
                )
        object.__setattr__(self, "_override_map", dict(self.overrides))

    def partition_of(self, value: float) -> int:
        """The partition owning ``value`` — total over the key space.

        Python's numeric ``hash`` is value-stable (independent of
        ``PYTHONHASHSEED``), so hash partitioning is deterministic
        across processes — a requirement of the distributed runtime,
        where every worker re-derives the same routing.
        """
        override = self._override_map.get(value)  # type: ignore[attr-defined]
        if override is not None:
            return override
        if value != value:  # NaN hashes by identity since 3.10
            return 0
        if self.scheme == HASH:
            return hash(value) % self.parts
        return bisect.bisect_right(self.boundaries, value)

    def rebalanced(self, key_counts: dict[float, int]) -> "PartitionSpec":
        """A new spec moving hot keys off overloaded partitions.

        Greedy: repeatedly take the most-loaded partition's hottest
        movable key and override it onto the least-loaded partition,
        while the move strictly improves the makespan.  Only overrides
        change, so the function stays total over the key space.
        """
        if self.parts < 2 or not key_counts:
            return self
        loads = [0.0] * self.parts
        keys_at: list[list[tuple[int, float]]] = [[] for _ in range(self.parts)]
        for key_value, count in sorted(key_counts.items()):
            part = self.partition_of(key_value)
            loads[part] += count
            keys_at[part].append((count, key_value))
        for bucket in keys_at:
            bucket.sort(key=lambda kc: (-kc[0], kc[1]))
        overrides = dict(self._override_map)  # type: ignore[attr-defined]
        for __ in range(len(key_counts)):
            src = max(range(self.parts), key=lambda p: (loads[p], -p))
            dst = min(range(self.parts), key=lambda p: (loads[p], p))
            gap = loads[src] - loads[dst]
            move = next(
                (
                    (count, key_value)
                    for count, key_value in keys_at[src]
                    if 0 < count < gap
                ),
                None,
            )
            if move is None:
                break
            count, key_value = move
            keys_at[src].remove(move)
            keys_at[dst].append(move)
            loads[src] -= count
            loads[dst] += count
            overrides[key_value] = dst
        return replace(
            self, overrides=tuple(sorted(overrides.items()))
        )


class PartitionRouter:
    """Splits one stage's input across partitions, order preserved.

    The router mirrors the wrapped operator's own routing-relevant
    logic exactly — which tuples the stage consumes vs passes through,
    and (for aggregates) when the watermark crosses a window boundary —
    so the partition clones together observe precisely the event stream
    the single operator would.

    :meth:`route` turns one input tuple into a list of ``(destination,
    tuple)`` sends: integer destinations address partitions (events
    wrapped with a per-partition sequence number), and :data:`MERGE`
    addresses the merge stage (schedule controls, numbered by the
    global ticket).
    """

    MERGE = "merge"

    def __init__(
        self,
        stage: str,
        spec: PartitionSpec,
        *,
        kind: str,
        key_attribute: str,
        streams: tuple[str, ...] = (),
        group_by: str | None = None,
        window: float | None = None,
    ) -> None:
        if kind not in (JOIN_STAGE, AGGREGATE_STAGE):
            raise ValueError(f"unknown stage kind {kind!r}")
        self.stage = stage
        self.spec = spec
        self.kind = kind
        self.key_attribute = key_attribute
        self.streams = streams
        self.group_by = group_by
        self.window = window
        self._sched = sched_stream(stage)
        self._flush = flush_stream(stage)
        self._evt_marker = f"{stage}.__evt"
        self._ticket = 0
        self._evt = [0] * spec.parts
        self._current_window: int | None = None
        self.partition_counts = [0] * spec.parts
        self.key_counts: dict[float, int] = {}

    @classmethod
    def for_operator(
        cls, op: Operator, spec: PartitionSpec
    ) -> "PartitionRouter":
        """Build the router matching a join or aggregate stage."""
        if isinstance(op, WindowJoinOperator):
            return cls(
                op.name,
                spec,
                kind=JOIN_STAGE,
                key_attribute=op.attribute,
                streams=(op.left_stream, op.right_stream),
            )
        if isinstance(op, WindowAggregateOperator):
            return cls(
                op.name,
                spec,
                kind=AGGREGATE_STAGE,
                key_attribute=op.attribute,
                group_by=op.group_by,
                window=op.window,
            )
        raise TypeError(f"{op!r} is not a partitionable stage")

    # ------------------------------------------------------------------
    def _sched_control(
        self, tup: StreamTuple, values: dict[str, float]
    ) -> tuple[object, StreamTuple]:
        control = StreamTuple(
            stream_id=self._sched,
            seq=self._ticket,
            created_at=tup.created_at,
            values=values,
            size=CONTROL_SIZE,
        )
        self._ticket += 1
        return (self.MERGE, control)

    def _to_partition(
        self, part: int, tup: StreamTuple
    ) -> tuple[object, StreamTuple]:
        event = self._evt[part]
        self._evt[part] += 1
        return (
            part,
            replace(
                tup,
                stream_id=f"{self._evt_marker}{event}__/{tup.stream_id}",
            ),
        )

    def route(self, tup: StreamTuple) -> list[tuple[object, StreamTuple]]:
        """The sends for one stage input: controls plus the data tuple."""
        events: list[tuple[object, StreamTuple]] = []
        if self.kind == AGGREGATE_STAGE:
            if self.key_attribute in tup.values:
                window_index = math.floor(tup.created_at / self.window)
                if self._current_window is None:
                    self._current_window = window_index
                elif window_index > self._current_window:
                    # window boundary: one global flush ticket, broadcast
                    events.append(
                        self._sched_control(
                            tup,
                            {
                                "partition": -1.0,
                                "window": float(window_index),
                            },
                        )
                    )
                    for index in range(self.spec.parts):
                        events.append(
                            self._to_partition(
                                index,
                                StreamTuple(
                                    stream_id=self._flush,
                                    seq=window_index,
                                    created_at=tup.created_at,
                                    values={"window": float(window_index)},
                                    size=CONTROL_SIZE,
                                ),
                            )
                        )
                    self._current_window = window_index
                key = (
                    tup.values.get(self.group_by, 0.0)
                    if self.group_by
                    else 0.0
                )
                part = self.spec.partition_of(key)
                self.partition_counts[part] += 1
                self.key_counts[key] = self.key_counts.get(key, 0) + 1
            else:
                part = 0  # pass-through rides partition 0 for ordering
        else:
            if tup.stream_id in self.streams:
                key = tup.value(self.key_attribute)
                part = self.spec.partition_of(key)
                self.partition_counts[part] += 1
                self.key_counts[key] = self.key_counts.get(key, 0) + 1
            else:
                part = 0
        events.append(self._sched_control(tup, {"partition": float(part)}))
        events.append(self._to_partition(part, tup))
        return events

    # ------------------------------------------------------------------
    def skew(self) -> float:
        """Max partition share over the ideal share (1.0 = even)."""
        total = sum(self.partition_counts)
        if not total:
            return 1.0
        return max(self.partition_counts) * self.spec.parts / total

    def repartition(self, spec: PartitionSpec) -> None:
        """Swap the live spec (rebalancing); skew counters restart.

        Event and ticket counters deliberately continue — in-flight
        numbering must stay monotone across a rebalance.
        """
        if spec.parts != self.spec.parts:
            raise ValueError("repartitioning cannot change the part count")
        self.spec = spec
        self.reset_counts()

    def reset_counts(self) -> None:
        """Forget observed routing counts (after a rebalance)."""
        self.partition_counts = [0] * self.spec.parts
        self.key_counts = {}

    def reset(self) -> None:
        """Full reset for a fresh run: counts, watermark, sequencing."""
        self.reset_counts()
        self._ticket = 0
        self._evt = [0] * self.spec.parts
        self._current_window = None


class PartitionStageOperator(Operator):
    """One partition of a split stage: a clone plus the event protocol.

    Consumes the sequenced events the router assigned to this partition
    (data tuples and flush controls), reordering held events so the
    clone always advances in router order.  Every processed event's
    outputs are enveloped with ``(partition, event, index)`` — encoded
    in the stream id, so the tuple underneath survives byte-identical —
    followed by one ack naming the event and its output count.
    """

    def __init__(self, inner: Operator, index: int, parts: int) -> None:
        super().__init__(
            f"{inner.name}[p{index}]",
            cost_per_tuple=inner.cost_per_tuple,
            estimated_selectivity=inner.estimated_selectivity + 1.0,
        )
        self.inner = inner
        self.index = index
        self.parts = parts
        self.stage = inner.name
        self.ack = ack_stream(inner.name, index)
        self.flush = flush_stream(inner.name)
        self._evt_marker = f"{inner.name}.__evt"
        self._next_event = 0
        self._held: dict[int, StreamTuple] = {}

    # ------------------------------------------------------------------
    def _decode(self, tup: StreamTuple) -> tuple[int | None, StreamTuple]:
        stream_id = tup.stream_id
        if not stream_id.startswith(self._evt_marker):
            return None, tup
        rest = stream_id[len(self._evt_marker):]
        event_str, sep, original = rest.partition("__/")
        if not sep or not event_str.isdigit():
            return None, tup
        return int(event_str), replace(tup, stream_id=original)

    def cost(self, tup: StreamTuple) -> float:
        __, original = self._decode(tup)
        if original.stream_id == self.flush:
            return self.inner.cost_per_tuple
        return self.inner.cost(original)

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        event, original = self._decode(tup)
        if event is not None and event != self._next_event:
            self._held[event] = original  # arrived early; hold in order
            return []
        out = self._run_event(original, now)
        while self._next_event in self._held:
            out.extend(
                self._run_event(self._held.pop(self._next_event), now)
            )
        return out

    def _run_event(
        self, original: StreamTuple, now: float
    ) -> list[StreamTuple]:
        if original.stream_id == self.flush:
            outs = self.inner.advance_window(int(original.values["window"]))
        else:
            outs = self.inner.process(original, now)
        event = self._next_event
        self._next_event += 1
        prefix = f"{self.stage}.__p{self.index}.{event}."
        wrapped = [
            replace(out, stream_id=f"{prefix}{j}__/{out.stream_id}")
            for j, out in enumerate(outs)
        ]
        wrapped.append(
            StreamTuple(
                stream_id=self.ack,
                seq=event,
                created_at=original.created_at,
                values={"event": float(event), "count": float(len(outs))},
                size=CONTROL_SIZE,
            )
        )
        return wrapped

    def held_events(self) -> int:
        """Events waiting on earlier ones (0 when quiescent)."""
        return len(self._held)

    def reset_state(self) -> None:
        self.inner.reset_state()
        self._next_event = 0
        self._held.clear()


class _PartitionInbox:
    """The merge's reassembly buffer for one partition's events."""

    __slots__ = ("events", "counts", "consumed")

    def __init__(self) -> None:
        self.events: dict[int, dict[int, StreamTuple]] = {}
        self.counts: dict[int, int] = {}
        self.consumed = 0

    def ready(self) -> bool:
        count = self.counts.get(self.consumed)
        if count is None:
            return False
        return len(self.events.get(self.consumed, ())) == count

    def pop_next(self) -> list[StreamTuple]:
        count = self.counts.pop(self.consumed)
        collected = self.events.pop(self.consumed, {})
        self.consumed += 1
        return [collected[j] for j in range(count)]

    def buffered(self) -> int:
        return sum(len(e) for e in self.events.values()) + len(self.counts)


class MergeStageOperator(Operator):
    """Deterministic order-preserving merge of the partition outputs.

    Assembles each partition's events from ``(partition, event, index)``
    envelopes plus the ack's output count, and releases them strictly
    in the router's global ticket order — so the merged output is
    independent of network interleaving.  Released tuples carrying the
    stage's output stream are renumbered with one global sequence
    counter (exactly the single operator's ``_emit_seq`` semantics);
    pass-through tuples are released untouched.  A flush ticket takes
    the next event from *every* partition and interleaves the
    per-partition (sorted) flush outputs by group value, reproducing
    the single operator's globally sorted flush.
    """

    def __init__(
        self, stage: str, parts: int, *, group_by: str | None = None
    ) -> None:
        super().__init__(
            f"{stage}#merge",
            cost_per_tuple=2e-6,
            estimated_selectivity=0.5,
        )
        self.stage = stage
        self.parts = parts
        self.group_by = group_by
        self.out_stream = f"{stage}.out"
        self.sched = sched_stream(stage)
        self._out_marker = f"{stage}.__p"
        self._ack_index = {
            ack_stream(stage, index): index for index in range(parts)
        }
        self._sched_parts: dict[int, int] = {}  # ticket -> partition|-1
        self._next_ticket = 0
        self._inboxes = [_PartitionInbox() for _ in range(parts)]
        self._emit_seq = 0

    # ------------------------------------------------------------------
    def _decode(
        self, stream_id: str
    ) -> tuple[tuple[int, int, int] | None, str]:
        if not stream_id.startswith(self._out_marker):
            return None, stream_id
        rest = stream_id[len(self._out_marker):]
        head, sep, original = rest.partition("__/")
        if not sep:
            return None, stream_id
        fields = head.split(".")
        if len(fields) != 3 or not all(f.isdigit() for f in fields):
            return None, stream_id
        part, event, index = (int(f) for f in fields)
        if part >= self.parts:
            return None, stream_id
        return (part, event, index), original

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        stream_id = tup.stream_id
        if stream_id == self.sched:
            self._sched_parts[tup.seq] = int(tup.values["partition"])
            return self._release()
        ack_part = self._ack_index.get(stream_id)
        if ack_part is not None:
            inbox = self._inboxes[ack_part]
            inbox.counts[int(tup.values["event"])] = int(
                tup.values["count"]
            )
            return self._release()
        ids, original = self._decode(stream_id)
        if ids is None:
            return [tup]
        part, event, index = ids
        self._inboxes[part].events.setdefault(event, {})[index] = replace(
            tup, stream_id=original
        )
        return self._release()

    # ------------------------------------------------------------------
    def _renumber(self, tup: StreamTuple) -> StreamTuple:
        if tup.stream_id == self.out_stream:
            tup = replace(tup, seq=self._emit_seq)
            self._emit_seq += 1
        return tup

    def _flush_key(self, tup: StreamTuple) -> float:
        if self.group_by is None:
            return 0.0
        return tup.values.get(self.group_by, 0.0)

    def _release(self) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        while True:
            part = self._sched_parts.get(self._next_ticket)
            if part is None:
                break
            if part >= 0:
                inbox = self._inboxes[part]
                if not inbox.ready():
                    break
                event = inbox.pop_next()
                out.extend(self._renumber(t) for t in event)
            else:
                if not all(inbox.ready() for inbox in self._inboxes):
                    break
                events = [inbox.pop_next() for inbox in self._inboxes]
                out.extend(
                    self._renumber(t)
                    for t in heapq.merge(*events, key=self._flush_key)
                )
            del self._sched_parts[self._next_ticket]
            self._next_ticket += 1
        return out

    def buffered(self) -> int:
        """In-flight events held back by the merge (0 when quiescent)."""
        return len(self._sched_parts) + sum(
            inbox.buffered() for inbox in self._inboxes
        )

    def reset_state(self) -> None:
        self._sched_parts.clear()
        self._next_ticket = 0
        self._inboxes = [_PartitionInbox() for _ in range(self.parts)]
        self._emit_seq = 0


# ----------------------------------------------------------------------
# Stage detection and state redistribution
# ----------------------------------------------------------------------
def stage_kind(op: Operator) -> str | None:
    """``join``/``aggregate`` when ``op`` can be partitioned, else None.

    A window join partitions on its key only for exact matches
    (``tolerance == 0``): hash partitioning a band join would separate
    tuples that match.  An aggregate partitions on its group attribute.
    """
    if isinstance(op, WindowJoinOperator) and op.tolerance == 0.0:
        return JOIN_STAGE
    if isinstance(op, WindowAggregateOperator) and op.group_by is not None:
        return AGGREGATE_STAGE
    return None


def partitionable_stage(plan: QueryPlan) -> int | None:
    """Index of the first partitionable stage, or None.

    The stage must not be the plan's head: the router runs where the
    pre-stage fragment ends, so there must be one (generated plans
    always lead with per-stream filters).
    """
    for index, op in enumerate(plan.operators):
        if index > 0 and stage_kind(op) is not None:
            return index
    return None


def redistribute_state(
    stages: list[PartitionStageOperator], spec: PartitionSpec
) -> None:
    """Move operator state between partition clones for a new spec.

    Must run at quiescence (sources gated, dataflow drained, merge
    buffers empty).  Join windows are pooled per stream, re-sorted by
    source sequence (= arrival order), and dealt back by the new spec;
    aggregate accumulators move by group, and the clone watermarks are
    aligned to the furthest one so no window flushes twice.
    """
    inners = [stage.inner for stage in stages]
    first = inners[0]
    if isinstance(first, WindowJoinOperator):
        pooled: dict[str, list[StreamTuple]] = {}
        for inner in inners:
            for stream_id, tuples in inner.snapshot_windows().items():
                pooled.setdefault(stream_id, []).extend(tuples)
        for tuples in pooled.values():
            tuples.sort(key=lambda t: t.seq)
        attribute = first.attribute
        for index, inner in enumerate(inners):
            inner.load_windows(
                {
                    stream_id: [
                        tup
                        for tup in tuples
                        if spec.partition_of(tup.value(attribute)) == index
                    ]
                    for stream_id, tuples in pooled.items()
                }
            )
    else:
        merged: dict[float, list[float]] = {}
        watermark: int | None = None
        for inner in inners:
            current, groups = inner.snapshot_groups()
            merged.update(groups)
            if current is not None:
                watermark = (
                    current if watermark is None else max(watermark, current)
                )
        for index, inner in enumerate(inners):
            inner.load_groups(
                watermark,
                {
                    group: acc
                    for group, acc in merged.items()
                    if spec.partition_of(group) == index
                },
            )


class PartitionedOperator(Operator):
    """The synchronous composition: router → stages → merge, in place.

    Drop-in replacement for the wrapped operator with identical
    observable behaviour (the equivalence property suite asserts
    bit-identical outputs and stats).  Also the unit the rebalance
    property tests drive mid-stream.
    """

    def __init__(self, inner: Operator, spec: PartitionSpec) -> None:
        if stage_kind(inner) is None:
            raise TypeError(f"{inner!r} is not a partitionable stage")
        super().__init__(
            inner.name,
            cost_per_tuple=inner.cost_per_tuple,
            estimated_selectivity=inner.estimated_selectivity,
        )
        self.spec = spec
        self.router = PartitionRouter.for_operator(inner, spec)
        self.stages = [
            PartitionStageOperator(inner.clone(), index, spec.parts)
            for index in range(spec.parts)
        ]
        group_by = (
            inner.group_by
            if isinstance(inner, WindowAggregateOperator)
            else None
        )
        self.merge = MergeStageOperator(
            inner.name, spec.parts, group_by=group_by
        )

    def process(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        for dest, event in self.router.route(tup):
            if dest == PartitionRouter.MERGE:
                out.extend(self.merge.process(event, now))
            else:
                for produced in self.stages[dest].process(event, now):
                    out.extend(self.merge.process(produced, now))
        return out

    def rebalance(self) -> PartitionSpec:
        """Install a skew-correcting spec and move clone state over."""
        spec = self.router.spec.rebalanced(self.router.key_counts)
        redistribute_state(self.stages, spec)
        self.router.repartition(spec)
        self.spec = spec
        return spec

    def reset_state(self) -> None:
        self.router.reset()
        for stage in self.stages:
            stage.reset_state()
        self.merge.reset_state()


# ----------------------------------------------------------------------
# Plan-level deployment
# ----------------------------------------------------------------------
@dataclass
class PartitionedDeployment:
    """A query's partition-parallel fragment layout plus live hooks."""

    query_id: str
    kind: str
    spec: PartitionSpec
    router: PartitionRouter
    pre: Fragment
    parts: list[Fragment] = field(default_factory=list)
    merge: Fragment | None = None

    @property
    def fragments(self) -> list[Fragment]:
        """All fragments in order: pre, partitions, merge."""
        return [self.pre, *self.parts, self.merge]

    @property
    def stages(self) -> list[PartitionStageOperator]:
        """The partition stage operators, partition order."""
        return [fragment.operators[0] for fragment in self.parts]

    @property
    def merge_operator(self) -> MergeStageOperator:
        """The merge stage operator heading the merge fragment."""
        return self.merge.operators[0]

    def skew(self) -> float:
        """Observed routing skew since the last rebalance."""
        return self.router.skew()

    def rebalance(self) -> bool:
        """Skew-triggered rebalance under quiescence; True if changed.

        Callers (the adaptation loop) must have gated the sources and
        drained the dataflow first — asserted via the merge buffers.
        """
        if self.merge_operator.buffered():
            raise RuntimeError(
                f"{self.query_id}: rebalance requires a drained dataflow"
            )
        spec = self.router.spec.rebalanced(self.router.key_counts)
        if spec.overrides == self.router.spec.overrides:
            self.router.reset_counts()
            return False
        redistribute_state(self.stages, spec)
        self.router.repartition(spec)
        self.spec = spec
        return True

    def reset_runtime_state(self) -> None:
        """Fresh execution state for a new run (router + fragments)."""
        self.router.reset()
        for fragment in self.fragments:
            fragment.reset_state()


def plan_partitioned(
    plan: QueryPlan, parallelism: int, *, scheme: str = HASH
) -> PartitionedDeployment | None:
    """Split ``plan``'s hottest stage ``parallelism`` ways, if possible.

    Returns None when ``parallelism < 2`` or the plan has no
    partitionable stage behind a pre-fragment; callers then fall back to
    the plain chain fragmentation.
    """
    if parallelism < 2:
        return None
    index = partitionable_stage(plan)
    if index is None:
        return None
    op = plan.operators[index]
    kind = stage_kind(op)
    key = (
        op.attribute if kind == JOIN_STAGE else op.group_by  # type: ignore[union-attr]
    )
    spec = PartitionSpec(key=key, parts=parallelism, scheme=scheme)
    router = PartitionRouter.for_operator(op, spec)
    query_id = plan.query_id
    pre = Fragment(
        fragment_id=f"{query_id}#f0",
        query_id=query_id,
        index=0,
        operators=plan.operators[:index],
    )
    parts = [
        Fragment(
            fragment_id=f"{query_id}#p{i}",
            query_id=query_id,
            index=i + 1,
            operators=[PartitionStageOperator(op.clone(), i, parallelism)],
        )
        for i in range(parallelism)
    ]
    group_by = (
        op.group_by if isinstance(op, WindowAggregateOperator) else None
    )
    merge = Fragment(
        fragment_id=f"{query_id}#m",
        query_id=query_id,
        index=parallelism + 1,
        operators=[
            MergeStageOperator(op.name, parallelism, group_by=group_by),
            *plan.operators[index + 1:],
        ],
    )
    return PartitionedDeployment(
        query_id=query_id,
        kind=kind,
        spec=spec,
        router=router,
        pre=pre,
        parts=parts,
        merge=merge,
    )
