"""Query plans and fragments.

A plan is a linear operator pipeline fed by one or more input streams
(joins and unions merge extra streams *inside* the pipeline).  Section
4.1 dynamically partitions a query "into multiple query fragments"
distributed to processors: a :class:`Fragment` is a contiguous slice of
the pipeline, and a plan can be cut at any set of operator boundaries.

Cost model: the expected CPU cost of one *plan input tuple* is the sum of
operator costs discounted by the cumulative selectivity of everything
upstream — the textbook pipelined cost that also defines the paper's
inherent complexity ``p_k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.operators.base import Operator
from repro.streams.tuples import StreamTuple


class QueryPlan:
    """An ordered operator pipeline for one continuous query.

    Args:
        query_id: Owning query.
        input_streams: Stream ids feeding the head of the pipeline.
        operators: The pipeline, upstream first.
    """

    def __init__(
        self, query_id: str, input_streams: list[str], operators: list[Operator]
    ) -> None:
        if not operators:
            raise ValueError("a plan needs at least one operator")
        if not input_streams:
            raise ValueError("a plan needs at least one input stream")
        names = [op.name for op in operators]
        if len(names) != len(set(names)):
            raise ValueError("operator names must be unique within a plan")
        self.query_id = query_id
        self.input_streams = list(input_streams)
        self.operators = list(operators)

    def __len__(self) -> int:
        return len(self.operators)

    def fingerprints(self) -> tuple[tuple, ...]:
        """Per-operator canonical structural fingerprints, upstream first.

        The shared-computation optimizer aligns these sequences across
        colocated queries: the longest common prefix of two plans'
        fingerprints is exactly the pipeline segment one shared instance
        may evaluate for both queries.
        """
        return tuple(op.fingerprint() for op in self.operators)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def cost_per_input_tuple(self) -> float:
        """Expected CPU seconds per plan-input tuple (= p_k per tuple)."""
        total = 0.0
        carried = 1.0
        for op in self.operators:
            total += carried * op.cost_per_tuple
            carried *= op.selectivity
        return total

    def output_selectivity(self) -> float:
        """Expected output tuples per input tuple for the whole plan."""
        carried = 1.0
        for op in self.operators:
            carried *= op.selectivity
        return carried

    def estimated_load(self, input_rate: float) -> float:
        """CPU seconds per second the plan consumes at ``input_rate``."""
        return input_rate * self.cost_per_input_tuple()

    # ------------------------------------------------------------------
    # Fragmentation
    # ------------------------------------------------------------------
    def split(self, cuts: list[int]) -> list["Fragment"]:
        """Cut the pipeline after the given operator indices.

        ``cuts=[1]`` on a 4-operator plan yields fragments ``ops[0:2]``
        and ``ops[2:4]``.  An empty cut list yields one fragment.
        """
        boundaries = sorted(set(cuts))
        for cut in boundaries:
            if not 0 <= cut < len(self.operators) - 1:
                raise ValueError(f"cut {cut} out of range for {len(self)} operators")
        fragments = []
        start = 0
        for index, cut in enumerate([*boundaries, len(self.operators) - 1]):
            ops = self.operators[start : cut + 1]
            fragments.append(
                Fragment(
                    fragment_id=f"{self.query_id}#f{index}",
                    query_id=self.query_id,
                    index=index,
                    operators=ops,
                )
            )
            start = cut + 1
        return fragments

    def as_single_fragment(self) -> "Fragment":
        """The whole plan as one fragment (no distribution)."""
        return self.split([])[0]


@dataclass
class Fragment:
    """A contiguous slice of a plan, the unit of intra-entity placement."""

    fragment_id: str
    query_id: str
    index: int
    operators: list[Operator] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("a fragment needs at least one operator")

    # ------------------------------------------------------------------
    def cost_for(self, tup: StreamTuple) -> float:
        """Expected CPU cost of pushing ``tup`` through this fragment.

        Downstream operators are discounted by upstream selectivities;
        stateful operators report tuple-dependent costs via ``cost()``.
        """
        total = 0.0
        carried = 1.0
        for op in self.operators:
            total += carried * op.cost(tup)
            carried *= op.selectivity
        return total

    def cost_per_input_tuple(self) -> float:
        """Expected CPU seconds per fragment-input tuple."""
        total = 0.0
        carried = 1.0
        for op in self.operators:
            total += carried * op.cost_per_tuple
            carried *= op.selectivity
        return total

    def selectivity(self) -> float:
        """Expected outputs per input across the fragment."""
        carried = 1.0
        for op in self.operators:
            carried *= op.selectivity
        return carried

    def estimated_load(self, input_rate: float) -> float:
        """CPU seconds/second at the given input rate."""
        return input_rate * self.cost_per_input_tuple()

    def cost_for_batch(self, batch: list[StreamTuple]) -> float:
        """Amortised CPU cost of pushing a whole batch through.

        The per-input expected cost is computed once and multiplied by
        the batch size: state-dependent per-tuple terms (join probes)
        are averaged into the operators' nominal costs instead of being
        probed tuple by tuple — that amortisation is the point of the
        batch path.
        """
        return len(batch) * self.cost_per_input_tuple()

    def run(self, tup: StreamTuple, now: float) -> list[StreamTuple]:
        """Push one tuple through the operator slice."""
        batch = [tup]
        for op in self.operators:
            next_batch: list[StreamTuple] = []
            for item in batch:
                next_batch.extend(op.apply(item, now))
            if not next_batch:
                return []
            batch = next_batch
        return batch

    def run_batch(
        self, batch: list[StreamTuple], now: float
    ) -> list[StreamTuple]:
        """Push a whole batch through the operator slice, fused.

        One intermediate list per *operator stage* instead of one per
        tuple per stage: each operator's batch kernel consumes the full
        upstream batch in order.  Because every operator's
        ``process_batch`` preserves the per-tuple sequence, the output
        (and all window state evolution) is identical to running
        :meth:`run` tuple by tuple and concatenating.
        """
        for op in self.operators:
            if not batch:
                return []
            batch = op.apply_batch(batch, now)
        return batch

    def reset_state(self) -> None:
        """Drop window state in every operator (fragment migration)."""
        for op in self.operators:
            op.reset_state()
