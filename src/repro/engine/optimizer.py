"""Compile-time operator ordering.

§4.1 fixes "a particular operator ordering" when computing a query's
inherent complexity; this module provides the standard one: within any
contiguous run of *commutative stateless* operators (filters, samplers),
order ascending by the rank ``cost / (1 - selectivity)`` — cheapest,
most-selective first — which minimises the expected pipeline cost.  The
Adaptation Module (§4.2) then adapts this order at runtime when the
statistics it was derived from drift.
"""

from __future__ import annotations

from repro.engine.operators import FilterOperator, SampleOperator
from repro.engine.operators.base import Operator
from repro.engine.plan import QueryPlan

# operator classes that may be freely reordered among themselves
_COMMUTATIVE = (FilterOperator, SampleOperator)

_EPSILON = 1e-6


def is_commutative(op: Operator) -> bool:
    """Whether the operator may swap with its commutative neighbours."""
    return isinstance(op, _COMMUTATIVE)


def rank(op: Operator) -> float:
    """Selection-ordering rank: lower = run earlier.

    ``rank = cost / drop probability``; a free operator that drops
    everything has rank 0, an expensive pass-through has rank ~inf.
    """
    drop = max(_EPSILON, 1.0 - op.selectivity)
    return op.cost_per_tuple / drop


def optimize_plan(plan: QueryPlan) -> QueryPlan:
    """Return a plan with each commutative run sorted by rank.

    Non-commutative operators (joins, aggregates, projections, maps)
    act as barriers; only operators between barriers reorder.  The
    result is a *new* plan sharing the operator instances.
    """
    ordered: list[Operator] = []
    run: list[Operator] = []

    def flush() -> None:
        run.sort(key=lambda op: (rank(op), op.name))
        ordered.extend(run)
        run.clear()

    for op in plan.operators:
        if is_commutative(op):
            run.append(op)
        else:
            flush()
            ordered.append(op)
    flush()
    return QueryPlan(plan.query_id, plan.input_streams, ordered)


def expected_cost_improvement(before: QueryPlan, after: QueryPlan) -> float:
    """Fractional pipelined-cost saving of ``after`` vs ``before``."""
    old = before.cost_per_input_tuple()
    if old <= 0:
        return 0.0
    return 1.0 - after.cost_per_input_tuple() / old
