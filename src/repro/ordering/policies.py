"""Downstream-choice policies for the Adaptation Module.

The adaptive policy uses the classical rank criterion for pipelined
selection ordering — visit next the fragment with the lowest
``(expected time) / (expected drop probability)`` — where expected time
includes the candidate processor's queueing delay, so both selectivity
drift *and* load drift steer the ordering.
"""

from __future__ import annotations

import random

from repro.ordering.statistics import CandidateStats


class OrderingPolicy:
    """Chooses the next fragment among the remaining candidates."""

    def choose(
        self, candidates: list[CandidateStats], rng: random.Random
    ) -> CandidateStats:
        """Pick one candidate; ``candidates`` is non-empty."""
        raise NotImplementedError


class StaticPolicy(OrderingPolicy):
    """Always follow the fixed, compile-time order (lowest fragment id).

    This is the non-adaptive baseline: the order chosen at placement
    time is kept forever, however selectivities drift.
    """

    def choose(
        self, candidates: list[CandidateStats], rng: random.Random
    ) -> CandidateStats:
        return min(candidates, key=lambda c: c.fragment_id)


class RandomPolicy(OrderingPolicy):
    """Uniform random order (a sanity baseline)."""

    def choose(
        self, candidates: list[CandidateStats], rng: random.Random
    ) -> CandidateStats:
        return rng.choice(candidates)


class AdaptivePolicy(OrderingPolicy):
    """Rank-based adaptive ordering on (stale) statistics.

    ``rank = (queue_wait * wait_weight + cost) / max(eps, 1 - selectivity)``

    Lower rank first: cheap, highly-selective fragments on lightly
    loaded processors drop tuples early, sparing downstream work.
    """

    def __init__(self, *, wait_weight: float = 1.0, epsilon: float = 0.05) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.wait_weight = wait_weight
        self.epsilon = epsilon

    def rank(self, candidate: CandidateStats) -> float:
        """The candidate's current rank (lower = visit sooner)."""
        wait = candidate.queue_wait.value_or(0.0)
        cost = candidate.cost.value_or(1e-4)
        selectivity = candidate.selectivity.value_or(0.5)
        drop = max(self.epsilon, 1.0 - selectivity)
        return (wait * self.wait_weight + cost) / drop

    def choose(
        self, candidates: list[CandidateStats], rng: random.Random
    ) -> CandidateStats:
        return min(candidates, key=lambda c: (self.rank(c), c.fragment_id))
