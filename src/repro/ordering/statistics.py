"""Runtime statistics the Adaptation Module keeps per candidate.

"The AM continuously collects statistics of these candidate processors,
such as workload, selectivities of the query fragments and the
bandwidth usage etc."  Statistics are refreshed by periodic probes (not
read instantaneously), so adaptivity operates on slightly stale
information exactly as a real deployment would — the staleness interval
is an ablation knob in E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class EwmaEstimator:
    """Exponentially weighted moving average with a sane empty state."""

    def __init__(self, alpha: float = 0.3, initial: float | None = None) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value = initial
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold one sample in and return the new estimate."""
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1 - self.alpha) * self._value
        self.samples += 1
        return self._value

    @property
    def value(self) -> float | None:
        """Current estimate (``None`` before any sample)."""
        return self._value

    def value_or(self, default: float) -> float:
        """Current estimate with a fallback."""
        return self._value if self._value is not None else default


@dataclass
class CandidateStats:
    """The AM's (possibly stale) view of one candidate fragment/processor.

    Attributes:
        fragment_id: The candidate fragment.
        proc_id: The processor hosting it.
        queue_wait: EWMA of the processor's expected queueing delay.
        selectivity: EWMA of the fragment's observed selectivity.
        cost: EWMA of the fragment's per-tuple CPU cost.
        last_refresh: Virtual time of the last probe.
    """

    fragment_id: str
    proc_id: str
    queue_wait: EwmaEstimator = field(
        default_factory=lambda: EwmaEstimator(alpha=0.3)
    )
    selectivity: EwmaEstimator = field(
        default_factory=lambda: EwmaEstimator(alpha=0.3)
    )
    cost: EwmaEstimator = field(default_factory=lambda: EwmaEstimator(alpha=0.3))
    last_refresh: float = 0.0

    def refresh(
        self,
        now: float,
        *,
        queue_wait: float,
        selectivity: float,
        cost: float,
    ) -> None:
        """Fold a probe's readings into the estimators."""
        self.queue_wait.update(queue_wait)
        self.selectivity.update(selectivity)
        self.cost.update(cost)
        self.last_refresh = now

    def staleness(self, now: float) -> float:
        """Seconds since the last probe."""
        return now - self.last_refresh
