"""The Adaptation Module and the ordering network it runs in.

An :class:`OrderingNetwork` wires a set of commutative fragments — each
installed on its own processor's engine — so that every input tuple
visits all of them in *some* order.  The :class:`AdaptationModule` sits
in front of the engines (it "intercepts the input and output stream"),
probes candidates periodically, and picks the next hop per tuple via a
pluggable policy.  Tuples that a fragment drops terminate immediately:
the earlier the drop, the less CPU and bandwidth the query burns, which
is the whole point of adapting the order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.engine.executor import LocalEngine
from repro.engine.plan import Fragment
from repro.ordering.policies import AdaptivePolicy, OrderingPolicy
from repro.ordering.statistics import CandidateStats
from repro.simulation.network import Network
from repro.simulation.simulator import Simulator
from repro.streams.tuples import StreamTuple


@dataclass
class _Station:
    """One commutative fragment hosted on one engine/processor."""

    fragment: Fragment
    engine: LocalEngine
    node_id: str
    stats: CandidateStats


class AdaptationModule:
    """Per-tuple next-hop selection over (stale) candidate statistics."""

    def __init__(
        self,
        sim: Simulator,
        policy: OrderingPolicy | None = None,
        *,
        refresh_interval: float = 1.0,
    ) -> None:
        self.sim = sim
        self.policy = policy or AdaptivePolicy()
        self.refresh_interval = refresh_interval
        self.probe_messages = 0
        self._stations: dict[str, _Station] = {}
        self._stop: Callable[[], None] | None = None

    def register(self, station: _Station) -> None:
        """Add a candidate station to this AM's view."""
        self._stations[station.fragment.fragment_id] = station

    def start(self) -> None:
        """Begin periodic statistic refreshes."""
        if self._stop is None:
            self._refresh()
            self._stop = self.sim.every(self.refresh_interval, self._refresh)

    def stop(self) -> None:
        """Stop refreshing."""
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _refresh(self) -> None:
        for station in self._stations.values():
            self.probe_messages += 1
            fragment = station.fragment
            observed_sel = fragment.selectivity()
            station.stats.refresh(
                self.sim.now,
                queue_wait=station.engine.processor.expected_wait(),
                selectivity=observed_sel,
                cost=fragment.cost_per_input_tuple(),
            )

    def choose_next(
        self, remaining: list[str], rng: random.Random
    ) -> _Station:
        """Pick the next station among ``remaining`` fragment ids."""
        candidates = [self._stations[fid].stats for fid in remaining]
        chosen = self.policy.choose(candidates, rng)
        return self._stations[chosen.fragment_id]


class OrderingNetwork:
    """Runs tuples through commutative fragments in an adaptive order.

    Args:
        sim: The simulator.
        network: The (LAN) network between the processors.
        am: The adaptation module deciding next hops.
        entry_node: Network node id where tuples arrive (the delegation
            processor).
        sink: Called with each tuple that survives every fragment.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        am: AdaptationModule,
        entry_node: str,
        *,
        sink: Callable[[StreamTuple], None] | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.am = am
        self.entry_node = entry_node
        self.sink = sink
        self.rng = random.Random(0)
        self.tuples_in = 0
        self.tuples_out = 0
        self.latency_sum = 0.0
        self._stations: list[_Station] = []

    # ------------------------------------------------------------------
    def add_station(
        self, fragment: Fragment, engine: LocalEngine, node_id: str
    ) -> None:
        """Host one commutative fragment on an engine; register with the AM."""
        station = _Station(
            fragment=fragment,
            engine=engine,
            node_id=node_id,
            stats=CandidateStats(
                fragment_id=fragment.fragment_id,
                proc_id=engine.processor.proc_id,
            ),
        )
        self._stations.append(station)
        self.am.register(station)
        engine.install(fragment, downstream=None)

    def station_ids(self) -> list[str]:
        """Fragment ids of all stations."""
        return [s.fragment.fragment_id for s in self._stations]

    # ------------------------------------------------------------------
    def ingest(self, tup: StreamTuple) -> None:
        """Run one tuple through every station in an adaptive order."""
        self.tuples_in += 1
        remaining = self.station_ids()
        self._dispatch(tup, remaining, self.entry_node)

    def _dispatch(
        self, tup: StreamTuple, remaining: list[str], from_node: str
    ) -> None:
        if not remaining:
            self.tuples_out += 1
            self.latency_sum += self.sim.now - tup.created_at
            if self.sink is not None:
                self.sink(tup)
            return
        station = self.am.choose_next(remaining, self.rng)
        next_remaining = [
            fid for fid in remaining if fid != station.fragment.fragment_id
        ]

        def arrived(payload: StreamTuple) -> None:
            self._process_at(station, payload, next_remaining)

        self.network.send(
            from_node, station.node_id, tup.size, payload=tup, on_delivery=arrived
        )

    def _process_at(
        self, station: _Station, tup: StreamTuple, remaining: list[str]
    ) -> None:
        def downstream(out: StreamTuple) -> None:
            self._dispatch(out, remaining, station.node_id)

        station.engine.ingest(
            station.fragment.fragment_id, tup, downstream=downstream
        )

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency of surviving tuples."""
        if not self.tuples_out:
            return 0.0
        return self.latency_sum / self.tuples_out
