"""Adaptive distributed operator ordering (§4.2).

An engine-independent **Adaptation Module (AM)** "intercepts the input
and output stream of the processing engine", keeps statistics about the
candidate downstream processors (workload, fragment selectivities,
bandwidth), and "adaptively chooses the immediate downstream processor
for an output tuple".

The package models a set of *commutative* fragments (each hosted on a
processor) that every tuple must traverse in some order; the AM at each
hop picks which of the remaining fragments to visit next.
"""

from repro.ordering.adaptation_module import AdaptationModule, OrderingNetwork
from repro.ordering.policies import (
    AdaptivePolicy,
    OrderingPolicy,
    RandomPolicy,
    StaticPolicy,
)
from repro.ordering.statistics import CandidateStats, EwmaEstimator

__all__ = [
    "AdaptationModule",
    "OrderingNetwork",
    "OrderingPolicy",
    "StaticPolicy",
    "RandomPolicy",
    "AdaptivePolicy",
    "EwmaEstimator",
    "CandidateStats",
]
