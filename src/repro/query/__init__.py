"""Continuous query model: declarative specs and workload generators.

A :class:`~repro.query.spec.QuerySpec` declares *what* a client wants —
per-stream data interests plus optional join/aggregate/projection — and
compiles to an engine :class:`~repro.engine.plan.QueryPlan`.  Keeping the
spec declarative is what makes the inter-entity layer loosely coupled:
entities exchange specs, never engine-internal operator state.
"""

from repro.query.generator import QueryWorkload, WorkloadConfig, generate_workload
from repro.query.spec import AggregateSpec, JoinSpec, QuerySpec

__all__ = [
    "QuerySpec",
    "JoinSpec",
    "AggregateSpec",
    "WorkloadConfig",
    "QueryWorkload",
    "generate_workload",
]
