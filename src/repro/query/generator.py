"""Synthetic query workloads with controllable interest overlap.

The paper's allocation story hinges on "the data interest of different
queries may significantly overlap".  The generator plants *hot regions*
per stream — narrow attribute ranges that a configurable fraction of
queries cluster around — so overlap structure (and hence the query graph)
is tunable.  It also produces timed *query streams* (§3.2.1: "queries in
our application may arrive very quickly").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.interest.predicates import StreamInterest
from repro.query.spec import AggregateSpec, JoinSpec, QuerySpec
from repro.streams.catalog import StreamCatalog
from repro.streams.schema import StreamSchema


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for synthetic query generation.

    Attributes:
        query_count: Number of queries to draw.
        hot_regions: Hot ranges planted per stream attribute.
        hot_fraction: Probability a query's interest snaps to a hot region.
        width_fraction: Mean interest width as a fraction of the domain.
        join_fraction: Probability a query joins two streams.
        aggregate_fraction: Probability a query ends in an aggregate.
        cost_sigma: Lognormal sigma for the per-query cost multiplier.
        arrival_rate: Query arrivals per second (for timed workloads).
    """

    query_count: int = 100
    hot_regions: int = 4
    hot_fraction: float = 0.7
    width_fraction: float = 0.1
    join_fraction: float = 0.1
    aggregate_fraction: float = 0.3
    cost_sigma: float = 0.5
    arrival_rate: float = 10.0


@dataclass
class QueryWorkload:
    """Generated queries plus their arrival times."""

    queries: list[QuerySpec]
    arrival_times: list[float]
    config: WorkloadConfig

    def timed(self) -> list[tuple[float, QuerySpec]]:
        """``(arrival_time, query)`` pairs in arrival order."""
        return sorted(zip(self.arrival_times, self.queries), key=lambda p: p[0])


def _hot_centres(
    schema: StreamSchema, regions: int, rng: random.Random
) -> dict[str, list[float]]:
    """Fixed per-attribute hot centres for one stream."""
    centres: dict[str, list[float]] = {}
    for attr in schema.attributes:
        centres[attr.name] = [
            rng.uniform(attr.lo, attr.hi) for __ in range(regions)
        ]
    return centres


def _draw_interest(
    schema: StreamSchema,
    centres: dict[str, list[float]],
    config: WorkloadConfig,
    rng: random.Random,
) -> StreamInterest:
    """One conjunctive range interest over 1-2 attributes of a stream."""
    attr_count = 1 if len(schema.attributes) == 1 else rng.choice((1, 2))
    chosen = rng.sample(list(schema.attributes), k=attr_count)
    ranges: dict[str, tuple[float, float]] = {}
    for attr in chosen:
        domain = attr.hi - attr.lo
        width = max(
            domain * 1e-3,
            rng.lognormvariate(0.0, 0.5) * config.width_fraction * domain,
        )
        if rng.random() < config.hot_fraction and centres[attr.name]:
            centre = rng.choice(centres[attr.name])
        else:
            centre = rng.uniform(attr.lo, attr.hi)
        lo = max(attr.lo, centre - width / 2)
        hi = min(attr.hi, centre + width / 2)
        ranges[attr.name] = (lo, hi)
    return StreamInterest.on(schema.stream_id, **ranges)


def _shared_attribute(a: StreamSchema, b: StreamSchema) -> str | None:
    """First attribute name the two schemas have in common."""
    names_b = set(b.attribute_names())
    for name in a.attribute_names():
        if name in names_b:
            return name
    return None


def generate_workload(
    catalog: StreamCatalog,
    config: WorkloadConfig,
    *,
    seed: int = 0,
) -> QueryWorkload:
    """Draw a reproducible query workload against ``catalog``."""
    rng = random.Random(seed)
    centres = {
        schema.stream_id: _hot_centres(schema, config.hot_regions, rng)
        for schema in catalog.schemas()
    }
    schemas = catalog.schemas()
    queries: list[QuerySpec] = []
    for i in range(config.query_count):
        join: JoinSpec | None = None
        if len(schemas) >= 2 and rng.random() < config.join_fraction:
            pair = rng.sample(schemas, k=2)
            shared = _shared_attribute(pair[0], pair[1])
            if shared is not None:
                join = JoinSpec(attribute=shared, window=5.0)
                picked = pair
            else:
                picked = [rng.choice(schemas)]
        else:
            picked = [rng.choice(schemas)]

        interests = tuple(
            _draw_interest(schema, centres[schema.stream_id], config, rng)
            for schema in picked
        )
        aggregate: AggregateSpec | None = None
        if join is None and rng.random() < config.aggregate_fraction:
            schema = picked[0]
            attr = rng.choice(schema.attributes)
            aggregate = AggregateSpec(attribute=attr.name, fn="avg", window=10.0)

        queries.append(
            QuerySpec(
                query_id=f"q{i}",
                interests=interests,
                join=join,
                aggregate=aggregate,
                cost_multiplier=rng.lognormvariate(0.0, config.cost_sigma),
                client_x=rng.uniform(0.0, 1.0),
                client_y=rng.uniform(0.0, 1.0),
            )
        )

    arrivals: list[float] = []
    t = 0.0
    for __ in queries:
        t += rng.expovariate(config.arrival_rate)
        arrivals.append(t)
    return QueryWorkload(queries=queries, arrival_times=arrivals, config=config)
