"""Declarative continuous-query specifications.

Specs are the currency of the inter-entity layer: a coordinator routes a
spec down the tree, an entity's wrapper compiles it to a plan for its
local engine.  Each spec carries the client's position (for latency
accounting) and a cost multiplier modelling heterogeneous "inherent
complexity" — the ``p_k`` the Performance Ratio normalises by (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engine.operators import (
    FilterOperator,
    Operator,
    ProjectOperator,
    UnionOperator,
    WindowAggregateOperator,
    WindowJoinOperator,
)
from repro.engine.plan import QueryPlan
from repro.interest.overlap import interest_rate, interest_selectivity
from repro.interest.predicates import StreamInterest
from repro.streams.catalog import StreamCatalog


@dataclass(frozen=True, slots=True)
class JoinSpec:
    """Join the spec's two input streams on ``attribute``.

    ``cost`` optionally overrides the default nominal CPU seconds per
    tuple (still scaled by the query's ``cost_multiplier``) — probes and
    expensive match predicates make joins far heavier than filters, and
    the per-stage cost is what intra-operator parallelism spreads.
    """

    attribute: str
    window: float = 5.0
    tolerance: float = 0.0
    cost: float | None = None


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """Tumbling-window aggregate over ``attribute``.

    ``cost`` optionally overrides the default nominal CPU seconds per
    tuple (still scaled by ``cost_multiplier``) for heavy aggregation
    functions whose stage cost dwarfs the upstream filters.
    """

    attribute: str
    fn: str = "avg"
    window: float = 10.0
    group_by: str | None = None
    cost: float | None = None


@dataclass(frozen=True)
class QuerySpec:
    """One continuous query.

    Attributes:
        query_id: Unique id.
        interests: One :class:`StreamInterest` per input stream.
        join: Optional join of exactly two input streams.
        aggregate: Optional trailing window aggregate.
        project: Optional trailing projection attribute list.
        cost_multiplier: Scales every operator cost — heterogeneous
            inherent complexity across queries.
        client_x, client_y: Client position in the WAN plane (result
            delivery latency).
        tenant: Owning tenant, for per-tenant fair quotas and admission
            accounting at the control plane.  Deliberately excluded from
            :meth:`operator_fingerprints` — two tenants running the same
            pipeline still share computation.
    """

    query_id: str
    interests: tuple[StreamInterest, ...]
    join: JoinSpec | None = None
    aggregate: AggregateSpec | None = None
    project: tuple[str, ...] | None = None
    cost_multiplier: float = 1.0
    client_x: float = 0.5
    client_y: float = 0.5
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not self.interests:
            raise ValueError(f"query {self.query_id} has no input streams")
        stream_ids = [i.stream_id for i in self.interests]
        if len(stream_ids) != len(set(stream_ids)):
            raise ValueError(f"query {self.query_id} repeats an input stream")
        if self.join is not None and len(self.interests) != 2:
            raise ValueError("a join spec requires exactly two input streams")
        if self.cost_multiplier <= 0:
            raise ValueError("cost_multiplier must be positive")

    # ------------------------------------------------------------------
    @property
    def input_streams(self) -> list[str]:
        """Ids of the streams this query consumes."""
        return [i.stream_id for i in self.interests]

    def interest_for(self, stream_id: str) -> StreamInterest | None:
        """The query's interest on ``stream_id``, if it consumes it."""
        for interest in self.interests:
            if interest.stream_id == stream_id:
                return interest
        return None

    def required_attributes(self, stream_id: str) -> set[str] | None:
        """Attributes of ``stream_id`` this query actually reads.

        Used for the §3.1 "transforming" at dissemination ancestors: an
        upstream relay may project tuples down to the union of the
        subtree's required attributes.  Returns ``None`` when the query
        needs every attribute (``SELECT *`` with no narrowing), which
        disables projection for its subtree.
        """
        interest = self.interest_for(stream_id)
        if interest is None:
            return set()
        needed = set(interest.constraints)
        if self.join is not None:
            needed.add(self.join.attribute)
        if self.aggregate is not None:
            needed.add(self.aggregate.attribute)
            if self.aggregate.group_by is not None:
                needed.add(self.aggregate.group_by)
        if self.project is not None:
            needed.update(self.project)
        elif self.aggregate is None:
            # no projection and no aggregate: results carry raw tuples,
            # so every attribute must survive
            return None
        return needed

    @property
    def canonical_interests(self) -> tuple[StreamInterest, ...]:
        """The interests in canonical (sharing-comparable) order.

        Filters commute, so interest order is normalised by fingerprint
        — except for join queries, where the declared order fixes the
        ``left.``/``right.`` output sides and must be preserved.
        """
        if self.join is not None:
            return self.interests
        return tuple(sorted(self.interests, key=lambda i: i.fingerprint()))

    def operator_fingerprints(self) -> tuple[tuple, ...]:
        """Canonical per-operator fingerprints of the compiled pipeline.

        Derived from the spec alone (no catalog needed) and guaranteed
        equal to ``build_canonical_plan(catalog).fingerprints()`` —
        commutative predicate order is normalised, window parameters and
        join/aggregate shapes are embedded, cost knobs are excluded.
        The shared-computation optimizer groups colocated queries by
        common prefixes of this sequence.
        """
        interests = self.canonical_interests
        fps: list[tuple] = [
            ("filter", *interest.fingerprint()) for interest in interests
        ]
        streams = [i.stream_id for i in interests]
        if self.join is not None:
            left, right = streams
            fps.append(
                (
                    "join",
                    left,
                    right,
                    self.join.attribute,
                    self.join.window,
                    self.join.tolerance,
                )
            )
        elif len(interests) > 1:
            fps.append(("union", tuple(sorted(streams))))
        if self.aggregate is not None:
            fps.append(
                (
                    "agg",
                    self.aggregate.attribute,
                    self.aggregate.fn,
                    self.aggregate.window,
                    self.aggregate.group_by,
                )
            )
        if self.project is not None:
            fps.append(("project", tuple(self.project), 8.0))
        return tuple(fps)

    def build_canonical_plan(
        self, catalog: StreamCatalog, *, query_id: str | None = None
    ) -> QueryPlan:
        """Compile the spec with interests in canonical order.

        Output-identical to :meth:`build_plan` (filters commute), but
        the operator sequence aligns positionally with
        :meth:`operator_fingerprints`, which is what lets the sharing
        optimizer slice a common prefix off several queries' plans.
        ``query_id`` optionally renames the plan's operators (used to
        build a shared prefix under the group's own id).
        """
        spec = replace(
            self,
            interests=self.canonical_interests,
            query_id=query_id if query_id is not None else self.query_id,
        )
        return spec.build_plan(catalog)

    @property
    def partitionable(self) -> bool:
        """Whether the compiled plan has a partition-parallel stage.

        Exact-match window joins partition by join key; grouped
        aggregates partition by group.  Band joins (``tolerance > 0``)
        and ungrouped aggregates keep global state and stay sequential.
        """
        if self.join is not None and self.join.tolerance == 0.0:
            return True
        return self.aggregate is not None and self.aggregate.group_by is not None

    # ------------------------------------------------------------------
    # Analytics used by allocation and placement
    # ------------------------------------------------------------------
    def input_rate(self, catalog: StreamCatalog) -> float:
        """Raw tuples/second arriving at the plan head."""
        return sum(catalog.schema(s).rate for s in self.input_streams)

    def required_rate(self, catalog: StreamCatalog) -> float:
        """Bytes/second of data this query's interests require."""
        return sum(
            interest_rate(i, catalog.schema(i.stream_id)) for i in self.interests
        )

    def estimated_load(self, catalog: StreamCatalog) -> float:
        """CPU sec/sec this query costs (the vertex weight of §3.2.2)."""
        return self.build_plan(catalog).estimated_load(self.input_rate(catalog))

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def build_plan(self, catalog: StreamCatalog) -> QueryPlan:
        """Compile the spec to an executable pipeline.

        Shape: per-stream filters, then join or union (multi-stream),
        then aggregate, then projection.  Filter selectivities are set
        analytically from the schema value models.
        """
        ops: list[Operator] = []
        for i, interest in enumerate(self.interests):
            schema = catalog.schema(interest.stream_id)
            ops.append(
                FilterOperator(
                    f"{self.query_id}.filter{i}",
                    interest,
                    cost_per_tuple=5e-5 * self.cost_multiplier,
                    estimated_selectivity=self._filter_selectivity(
                        interest, catalog
                    ),
                )
            )
        if self.join is not None:
            left, right = self.input_streams
            ops.append(
                WindowJoinOperator(
                    f"{self.query_id}.join",
                    left,
                    right,
                    self.join.attribute,
                    window=self.join.window,
                    tolerance=self.join.tolerance,
                    cost_per_tuple=(
                        2e-4 if self.join.cost is None else self.join.cost
                    )
                    * self.cost_multiplier,
                )
            )
        elif len(self.interests) > 1:
            ops.append(
                UnionOperator(f"{self.query_id}.union", self.input_streams)
            )
        if self.aggregate is not None:
            ops.append(
                WindowAggregateOperator(
                    f"{self.query_id}.agg",
                    self.aggregate.attribute,
                    fn=self.aggregate.fn,
                    window=self.aggregate.window,
                    group_by=self.aggregate.group_by,
                    cost_per_tuple=(
                        6e-5
                        if self.aggregate.cost is None
                        else self.aggregate.cost
                    )
                    * self.cost_multiplier,
                )
            )
        if self.project is not None:
            ops.append(
                ProjectOperator(
                    f"{self.query_id}.project",
                    list(self.project),
                    cost_per_tuple=2e-5 * self.cost_multiplier,
                )
            )
        return QueryPlan(self.query_id, self.input_streams, ops)

    def _filter_selectivity(
        self, interest: StreamInterest, catalog: StreamCatalog
    ) -> float:
        """Fraction of the *combined* head input one filter passes.

        A filter passes all tuples of other streams through, so for a
        multi-stream head its effective selectivity is a rate-weighted
        mix of its own stream's selectivity and 1.
        """
        own = catalog.schema(interest.stream_id)
        own_sel = interest_selectivity(interest, own)
        total_rate = self.input_rate(catalog)
        if total_rate <= 0:
            return own_sel
        other_rate = total_rate - own.rate
        return (own.rate * own_sel + other_rate) / total_rate
