"""Static analysis and runtime invariant auditing for the reproduction.

The package has two halves that enforce the same discipline at
different times:

* :mod:`repro.analysis.core` + the ``rules_*`` modules — an AST-based
  linter (``python -m repro lint``) whose rule packs guard the
  properties the headline results rest on: determinism (no wall
  clock, no unseeded randomness, no unordered iteration feeding
  ordered output), asyncio hygiene in the live runtime, and
  encapsulation of invariant-bearing structures.
* :mod:`repro.analysis.invariants` — dynamic checkers
  (``python -m repro check``) for the paper's structural invariants:
  coordinator cluster size bounds (§3.2.1), dissemination
  parent/child + interest-superset consistency, delegation totality
  (§4), and allocation balance (§3.2.2).  They are callable from
  tests, the chaos harness, and the adaptation controller after every
  migration.
"""

from repro.analysis.core import (
    Analyzer,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_sources,
)
from repro.analysis.invariants import (
    InvariantViolation,
    audit_federation,
    check_allocation_balance,
    check_coordinator_tree,
    check_delegation,
    check_dissemination_tree,
    check_partitions,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Analyzer",
    "Finding",
    "InvariantViolation",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_sources",
    "audit_federation",
    "check_allocation_balance",
    "check_coordinator_tree",
    "check_delegation",
    "check_dissemination_tree",
    "check_partitions",
    "render_json",
    "render_text",
]
