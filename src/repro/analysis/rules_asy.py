"""ASY rule pack: asyncio hygiene for the live runtime.

The live runtime is cooperative: one forgotten ``await``, one blocking
sleep, or one garbage-collected task silently stalls or drops part of
the federation.  These rules flag the patterns that have bitten real
asyncio codebases: unawaited coroutine calls, blocking sleeps inside
coroutines, locks held across awaits, and fire-and-forget tasks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectContext,
    Rule,
    dotted_name,
    register,
)

#: asyncio module-level coroutine functions whose result must be awaited.
_ASYNCIO_COROUTINES = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.open_connection",
        "asyncio.to_thread",
    }
)

_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})


def _is_spawn_call(node: ast.Call) -> bool:
    """True for ``asyncio.create_task`` / ``loop.create_task`` / etc."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SPAWN_ATTRS:
        return True
    return isinstance(func, ast.Name) and func.id in _SPAWN_ATTRS


def _async_functions(
    tree: ast.Module,
) -> Iterator[ast.AsyncFunctionDef]:
    """Yield every async function definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


@register
class BlockingSleepRule(Rule):
    """ASY001: ``time.sleep`` inside ``async def``.

    A blocking sleep freezes the whole event loop — every entity task,
    channel, and heartbeat in the federation — for its duration.  Use
    ``await asyncio.sleep(...)`` (or the virtual clock's pacing).
    """

    id = "ASY001"
    summary = "time.sleep inside async def"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag ``time.sleep`` calls lexically inside async functions."""
        for func in _async_functions(module.tree):
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and dotted_name(node.func) == "time.sleep"
                ):
                    yield self.finding(
                        module,
                        node,
                        "time.sleep blocks the event loop; "
                        "use `await asyncio.sleep(...)`",
                    )


@register
class UnawaitedCoroutineRule(Rule):
    """ASY002: calling a coroutine function and discarding the coroutine.

    A bare ``foo()`` statement where ``foo`` is async creates a
    coroutine object and throws it away — the body never runs and
    Python only warns at garbage-collection time.  The rule uses the
    project-wide *unambiguously async* name set (defined ``async def``
    somewhere and never plain ``def``), so names that exist in both
    flavours (``run``, ``main``) are never flagged.
    """

    id = "ASY002"
    summary = "coroutine call without await"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag statement-level calls to known coroutine functions."""
        async_names = project.async_only_names
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            name = dotted_name(call.func)
            tail = name.split(".")[-1] if name else None
            if name in _ASYNCIO_COROUTINES or (
                tail is not None and tail in async_names
            ):
                yield self.finding(
                    module,
                    call,
                    f"`{name}()` is a coroutine function; the call does "
                    "nothing without `await`",
                )


def _names_a_lock(expr: ast.expr) -> bool:
    """True when a context expression looks like a mutual-exclusion lock.

    Matches ``self._lock`` / ``some_lock`` by name.  Condition variables
    (``_cond``) are deliberately excluded: ``await cond.wait()`` inside
    ``async with cond:`` is the correct asyncio pattern and releases the
    underlying lock while waiting.
    """
    name = dotted_name(expr)
    if name is None:
        return False
    return "lock" in name.split(".")[-1].lower()


@register
class LockAcrossAwaitRule(Rule):
    """ASY003: ``await`` while holding an ``asyncio.Lock``.

    Awaiting inside ``async with lock:`` keeps the lock held across a
    suspension point, serialising unrelated tasks behind slow I/O and
    inviting deadlock if the awaited path needs the same lock.  Keep
    critical sections synchronous, or justify with a suppression.
    """

    id = "ASY003"
    summary = "await while holding a lock"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag awaits inside lock-guarded ``async with`` bodies."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncWith):
                continue
            if not any(
                _names_a_lock(item.context_expr) for item in node.items
            ):
                continue
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Await):
                        yield self.finding(
                            module,
                            inner,
                            "await inside `async with <lock>` holds the "
                            "lock across a suspension point",
                        )


@register
class DiscardedTaskRule(Rule):
    """ASY004: ``create_task`` result discarded.

    The event loop keeps only a weak reference to tasks; a spawned task
    whose handle is dropped can be garbage-collected mid-flight and its
    exception silently lost.  Assign the handle somewhere that outlives
    the task (and await or cancel it on shutdown).
    """

    id = "ASY004"
    summary = "create_task result discarded"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag statement-level spawn calls whose handle is dropped."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _is_spawn_call(node.value)
            ):
                yield self.finding(
                    module,
                    node.value,
                    "task handle is discarded; retain it so crashes "
                    "surface and the task is not garbage-collected",
                )


@register
class UnnamedTaskRule(Rule):
    """ASY005: ``create_task`` without ``name=``.

    Named tasks make chaos reports, ``asyncio.all_tasks()`` dumps, and
    crash logs attributable to an entity/stream; anonymous ``Task-7``
    entries are useless under fault injection.  Library code must name
    every spawn (tests and benchmarks are exempt).
    """

    id = "ASY005"
    summary = "create_task without name="

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag unnamed spawn calls in library code."""
        if module.is_test_code:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and _is_spawn_call(node)
                and not any(kw.arg == "name" for kw in node.keywords)
            ):
                yield self.finding(
                    module,
                    node,
                    "spawned task has no name=; name it for attributable "
                    "crash reports",
                )


def _receiver_name(expr: ast.expr) -> str | None:
    """The receiver of an attribute call: ``a.b.write`` -> ``a.b``."""
    name = dotted_name(expr)
    if name is None or "." not in name:
        return None
    return name.rsplit(".", 1)[0]


def _looks_like_stream_writer(receiver: str) -> bool:
    """Whether a receiver name suggests an ``asyncio.StreamWriter``."""
    return "writer" in receiver.split(".")[-1].lower()


@register
class WriteWithoutDrainRule(Rule):
    """ASY006: ``StreamWriter.write`` without a paired ``await .drain()``.

    ``write`` only buffers; without ``await writer.drain()`` the
    transport's send buffer grows without bound when the peer reads
    slower than we produce — the flow-control contract of the wire
    protocol silently vanishes.  An async function that calls
    ``<writer>.write(...)`` must also ``await <writer>.drain()`` on the
    same receiver (anywhere in the function: loop bodies that batch
    writes before one drain are fine).
    """

    id = "ASY006"
    summary = "StreamWriter.write without await drain()"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag writer.write calls lacking a drain await in scope."""
        for func in _async_functions(module.tree):
            writes: dict[str, ast.Call] = {}
            drained: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Await) and isinstance(
                    node.value, ast.Call
                ):
                    call = node.value
                    if (
                        isinstance(call.func, ast.Attribute)
                        and call.func.attr == "drain"
                    ):
                        receiver = _receiver_name(call.func)
                        if receiver is not None:
                            drained.add(receiver)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr != "write":
                        continue
                    receiver = _receiver_name(node.func)
                    if receiver is None or not _looks_like_stream_writer(
                        receiver
                    ):
                        continue
                    writes.setdefault(receiver, node)
            for receiver in sorted(set(writes) - drained):
                yield self.finding(
                    module,
                    writes[receiver],
                    f"`{receiver}.write(...)` is never paired with "
                    f"`await {receiver}.drain()`; the send buffer can "
                    "grow without bound",
                )
