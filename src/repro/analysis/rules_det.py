"""DET rule pack: determinism guards.

The reproduction's parity and same-seed-determinism claims only hold
if simulated and live runs consume no ambient nondeterminism.  These
rules flag the three ways it usually leaks in: the wall clock, the
module-level ``random`` generator, and iteration order of sets.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectContext,
    Rule,
    dotted_name,
    register,
)

#: Modules that *implement* the virtual clocks and are allowed to talk
#: to real time (e.g. to pace virtual time against the event loop).
CLOCK_MODULES = frozenset({"entity_task.py", "chaos.py"})

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)
#: Dotted suffixes covering ``datetime.now()`` both via
#: ``from datetime import datetime`` and ``import datetime``.
_DATETIME_CALLS = frozenset(
    {
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: ``random`` module attributes that do not draw from the shared
#: unseeded generator (constructors and state management).
_RANDOM_ALLOWED = frozenset(
    {"Random", "SystemRandom", "seed", "getstate", "setstate"}
)


@register
class WallClockRule(Rule):
    """DET001: wall-clock reads outside the clock modules.

    ``time.time()``/``time.monotonic()``/``datetime.now()`` make run
    output depend on the host's clock; everything must go through
    ``LiveClock`` / ``VirtualClockLoop`` (or ``loop.time()``, which the
    virtual loop controls).  ``time.perf_counter`` is deliberately not
    flagged: it is used for *reporting* real elapsed cost (decision
    seconds, pause wall time), never for dataflow decisions.
    """

    id = "DET001"
    summary = "wall-clock call outside the clock modules"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag wall-clock calls unless this is a clock module."""
        if module.basename in CLOCK_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            suffix = ".".join(name.split(".")[-2:])
            if name in _WALL_CLOCK_CALLS or suffix in _DATETIME_CALLS:
                yield self.finding(
                    module, node, f"`{name}()` reads the wall clock"
                )


@register
class UnseededRandomRule(Rule):
    """DET002: use of the module-level (unseeded) ``random`` generator.

    Shared-generator draws make results depend on import order and any
    other caller; all randomness must come from a ``random.Random(seed)``
    instance owned by the component.
    """

    id = "DET002"
    summary = "module-level random.* call or import"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag ``random.X()`` calls and ``from random import X``."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name is not None
                    and name.startswith("random.")
                    and name.count(".") == 1
                    and name.split(".")[1] not in _RANDOM_ALLOWED
                ):
                    yield self.finding(
                        module,
                        node,
                        f"`{name}()` draws from the shared unseeded "
                        "generator; use a seeded random.Random instance",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _RANDOM_ALLOWED:
                        yield self.finding(
                            module,
                            node,
                            f"`from random import {alias.name}` binds the "
                            "shared unseeded generator",
                        )


def _is_set_like(node: ast.expr) -> bool:
    """True for expressions that are syntactically guaranteed sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_like(node.left) or _is_set_like(node.right)
    return False


@register
class UnorderedIterationRule(Rule):
    """DET003: iterating a set expression without ``sorted(...)``.

    Set iteration order depends on the interpreter's hash seed, so any
    loop/comprehension/``list()`` fed directly by a set expression can
    reorder downstream output.  ``dict`` iteration is insertion-ordered
    in supported Pythons and is not flagged.  Wrap the expression in
    ``sorted(...)`` or suppress when the loop body is order-insensitive
    (e.g. folds into a commutative reduction or another set).
    """

    id = "DET003"
    summary = "iteration over a set expression without sorted()"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag for-loops, comprehensions, and list()/tuple() over sets."""
        for node in ast.walk(module.tree):
            candidates: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                candidates.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                candidates.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in {"list", "tuple"} and len(node.args) == 1:
                    candidates.append(node.args[0])
            for expr in candidates:
                if _is_set_like(expr):
                    yield self.finding(
                        module,
                        expr,
                        "iterates a set in hash order; wrap in sorted(...) "
                        "or justify with a suppression",
                    )
