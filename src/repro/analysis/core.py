"""Core of the AST-based linter: findings, rules, and the analyzer.

A :class:`Rule` inspects one parsed module at a time but may consult a
:class:`ProjectContext` built from *all* modules in the run (two-pass
design).  The context records which function names are defined
``async`` anywhere in the project and which private attributes each
module itself defines, so rules can avoid the classic false positives
(a name that exists both sync and async, or a class touching its own
module's private state).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.analysis.suppressions import Suppressions

#: File basenames treated as test/benchmark code by rules that only
#: apply to library code (e.g. encapsulation checks).
_TEST_PREFIXES = ("test_", "bench_")
_TEST_BASENAMES = {"conftest.py", "check_regression.py"}


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable by location then rule."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Format as ``path:line:col: RULE message`` for text output."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed source file plus its per-file lint context."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def basename(self) -> str:
        """Final path component (e.g. ``chaos.py``)."""
        return Path(self.path).name

    @property
    def is_test_code(self) -> bool:
        """True for test/benchmark/conftest files, where some rules relax."""
        name = self.basename
        return name.startswith(_TEST_PREFIXES) or name in _TEST_BASENAMES


@dataclass
class ProjectContext:
    """Facts gathered across every module in the lint run (pass one).

    ``async_only_names`` holds function names defined ``async def``
    somewhere and *never* defined as a plain ``def`` anywhere — the
    unambiguous set a rule may safely assume is a coroutine function.
    ``private_defs`` maps module path to the private attribute/method
    names that module itself introduces (``self._x = ...`` or class
    body definitions), which in-family code may touch freely.
    """

    async_names: set[str] = field(default_factory=set)
    sync_names: set[str] = field(default_factory=set)
    private_defs: dict[str, set[str]] = field(default_factory=dict)
    #: Every module scanned this run, in order.  Whole-project rules
    #: (the PROTO pack cross-checks sender/handler state machines
    #: against the codec registry) derive their facts from these.
    modules: list[ModuleInfo] = field(default_factory=list)

    @property
    def async_only_names(self) -> set[str]:
        """Names that are coroutine functions everywhere they are defined."""
        return self.async_names - self.sync_names

    def module_privates(self, path: str) -> set[str]:
        """Private names the module at ``path`` defines for itself."""
        return self.private_defs.get(path, set())

    def scan(self, module: ModuleInfo) -> None:
        """Accumulate project facts from one parsed module."""
        self.modules.append(module)
        privates = self.private_defs.setdefault(module.path, set())
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                self.async_names.add(node.name)
            elif isinstance(node, ast.FunctionDef):
                self.sync_names.add(node.name)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    privates.add(node.name)
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    for name in _assigned_names(stmt):
                        if name.startswith("_"):
                            privates.add(name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                for attr in _self_attr_targets(node):
                    if attr.startswith("_"):
                        privates.add(attr)


def _assigned_names(stmt: ast.stmt) -> Iterator[str]:
    """Yield plain names bound by a class-body assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id


def _self_attr_targets(node: ast.Assign | ast.AnnAssign) -> Iterator[str]:
    """Yield attribute names assigned on ``self`` by ``node``."""
    targets: list[ast.expr]
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    else:
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr


class Rule:
    """Base class for lint rules; subclasses set ``id`` and ``summary``.

    Subclasses implement :meth:`check`, yielding :class:`Finding`
    objects for one module.  Suppression handling is applied by the
    analyzer afterwards, so rules never need to look at comments.
    """

    id: str = ""
    summary: str = ""

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Yield findings for ``module``; default implementation is empty."""
        return iter(())

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, importing the rule packs."""
    # Imported here so the registry is populated on first use without
    # circular imports at module load time.
    from repro.analysis import (  # noqa: F401
        rules_asy,
        rules_det,
        rules_inv,
        rules_proto,
    )

    return [cls() for __, cls in sorted(_REGISTRY.items())]


def dotted_name(node: ast.expr) -> str | None:
    """Return ``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Analyzer:
    """Runs the registered rules over files or in-memory sources."""

    def __init__(self, rules: Iterable[Rule] | None = None) -> None:
        """Use ``rules`` if given, otherwise every registered rule."""
        self.rules = list(rules) if rules is not None else all_rules()

    def analyze_sources(self, sources: dict[str, str]) -> list[Finding]:
        """Lint a mapping of ``{path: source}`` (used by tests and the CLI)."""
        modules: list[ModuleInfo] = []
        findings: list[Finding] = []
        for path, source in sorted(sources.items()):
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=path,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1),
                        rule="E999",
                        message=f"syntax error: {exc.msg}",
                    )
                )
                continue
            modules.append(
                ModuleInfo(
                    path=path,
                    source=source,
                    tree=tree,
                    suppressions=Suppressions.from_source(source),
                )
            )
        project = ProjectContext()
        for module in modules:
            project.scan(module)
        for module in modules:
            for rule in self.rules:
                for finding in rule.check(module, project):
                    if not module.suppressions.is_suppressed(
                        finding.rule, finding.line
                    ):
                        findings.append(finding)
        return sorted(findings)

    def analyze_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint every ``*.py`` file under the given files/directories."""
        sources: dict[str, str] = {}
        for path in paths:
            for file in sorted(_iter_py_files(Path(path))):
                sources[str(file)] = file.read_text(encoding="utf-8")
        return self.analyze_sources(sources)


def _iter_py_files(root: Path) -> Iterator[Path]:
    """Yield ``root`` itself if a ``.py`` file, else its ``.py`` descendants."""
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for file in root.rglob("*.py"):
        if "__pycache__" not in file.parts:
            yield file


def analyze_paths(
    paths: Iterable[str | Path], rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Convenience wrapper: lint paths with the full (or given) rule set."""
    return Analyzer(rules).analyze_paths(paths)


def analyze_sources(
    sources: dict[str, str], rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Convenience wrapper: lint in-memory sources."""
    return Analyzer(rules).analyze_sources(sources)


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Yield every (async) function definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def call_filter(
    tree: ast.AST, predicate: Callable[[ast.Call], bool]
) -> Iterator[ast.Call]:
    """Yield calls in ``tree`` matching ``predicate``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and predicate(node):
            yield node
