"""Parsing of ``# repro: allow[RULE]`` suppression comments.

Three forms are recognised:

* trailing on a code line — suppresses those rules on that line::

      planner._queries  # repro: allow[INV001] planner owns migration state

* on a standalone comment line — suppresses on the *next* line::

      # repro: allow[DET003] order is folded through a commutative sum
      for item in {a, b, c}:

* file-wide, anywhere in the file::

      # repro: allow-file[ASY005] demo script, tasks are short-lived

Multiple rule IDs may be listed comma-separated inside the brackets.
Everything after the closing bracket is a free-form justification and
is ignored by the parser (but expected by reviewers).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(
    r"#\s*repro:\s*allow(?P<scope>-file)?\[(?P<rules>[A-Z0-9,\s]+)\]"
)


@dataclass
class Suppressions:
    """Suppression directives parsed from one source file."""

    #: rule id -> set of line numbers (1-based) where it is allowed
    by_line: dict[str, set[int]] = field(default_factory=dict)
    #: rule ids allowed for the whole file
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        """Parse all suppression directives out of ``source``."""
        supp = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(line)
            if match is None:
                continue
            rules = {
                rule.strip()
                for rule in match.group("rules").split(",")
                if rule.strip()
            }
            if match.group("scope"):
                supp.file_wide.update(rules)
                continue
            target = lineno
            if line[: match.start()].strip() == "":
                # Standalone comment: applies to the following line.
                target = lineno + 1
            for rule in rules:
                supp.by_line.setdefault(rule, set()).add(target)
        return supp

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is allowed on ``line`` (or file-wide)."""
        if rule_id in self.file_wide:
            return True
        return line in self.by_line.get(rule_id, set())
