"""PROTO rule pack: wire-protocol conformance lint.

The distributed runtime's protocol lives in three places that must
agree: the codec's frame registry (``repro/distributed/codec.py``), the
coordinator's handler state machine, and the worker's handler state
machines (control loop + peer loop).  These rules extract all three by
AST and cross-check them against the declared ``FRAME_DIRECTIONS``
table, so protocol drift — a frame added without a handler, an encode
path disagreeing with its decode path, an undeclared sender — is a
lint finding instead of a hang or a crash on a live socket.

Rules:

* **PROTO001** — a declared frame type has no handler (``frame_type ==
  codec.X`` comparison) in any module of its declared receiver role.
* **PROTO002** — the encode path and the decode path of a frame
  disagree on the payload family (JSON / tuple-batch / credit).
* **PROTO003** — a module sends a frame whose declared sender role does
  not match the module's protocol role (or the module has none).
* **PROTO004** — the codec registry itself is inconsistent: a frame
  constant missing from ``FRAME_TYPE_NAMES`` or ``FRAME_DIRECTIONS``,
  a name mismatch, a duplicate wire id, or an unknown role.

The pack is self-contained over the sources in the lint run: the
registry is read from the scanned codec module's AST, so the rules are
inert when the codec is not part of the run (e.g. linting a single
unrelated file) and fully testable with in-memory fixtures.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectContext,
    Rule,
    register,
)

#: Protocol role of each module, by basename.  The link layer
#: (``links.py``) runs inside worker processes, so its sends count as
#: worker sends.
ROLE_OF_MODULE: dict[str, str] = {
    "coordinator.py": "coordinator",
    "worker.py": "worker",
    "links.py": "worker",
}

#: The modules hosting each role's frame-dispatch state machine.  A
#: role's handlers are only audited (PROTO001) when its handler module
#: is part of the lint run, so linting a lone file stays quiet.
HANDLER_MODULES: dict[str, str] = {
    "coordinator.py": "coordinator",
    "worker.py": "worker",
}

KNOWN_ROLES = frozenset({"coordinator", "worker"})

#: Payload families by codec helper name, for both directions.
_DECODER_FAMILY = {
    "decode_json": "json",
    "decode_batch": "batch",
    "decode_credit": "credit",
}
_ENCODER_FAMILY = {
    "encode_json": "json",
    "encode_batch": "batch",
    "encode_credit": "credit",
}


@dataclass
class SendSite:
    """One place a module encodes/sends a protocol frame."""

    module: ModuleInfo
    frame: str
    family: str | None  # json | batch | credit | empty | None (unknown)
    node: ast.AST


@dataclass
class HandlerSite:
    """One ``frame_type == codec.X`` dispatch arm and its decoders."""

    module: ModuleInfo
    frame: str
    families: frozenset[str]
    node: ast.AST


@dataclass
class ProtocolFacts:
    """Everything the PROTO rules know about one lint run."""

    codec: ModuleInfo | None = None
    #: frame constant name -> (wire id, line)
    constants: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: names registered in FRAME_TYPE_NAMES -> (registered string, line)
    type_names: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: FRAME_DIRECTIONS: frame name -> (sender, receiver, line)
    directions: dict[str, tuple[str, str, int]] = field(default_factory=dict)
    sends: list[SendSite] = field(default_factory=list)
    handlers: list[HandlerSite] = field(default_factory=list)
    #: Roles whose handler module (:data:`HANDLER_MODULES`) is in the run.
    present_roles: set[str] = field(default_factory=set)

    @property
    def frames(self) -> set[str]:
        return set(self.constants) | set(self.directions)


def _callee_name(func: ast.expr) -> str | None:
    """``codec.decode_json`` / ``decode_json`` -> ``decode_json``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _frame_ref(expr: ast.expr, frames: set[str]) -> str | None:
    """Resolve ``codec.HELLO`` or a bare ``HELLO`` to a frame name."""
    name: str | None = None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is not None and name in frames:
        return name
    return None


def _scan_codec(module: ModuleInfo, facts: ProtocolFacts) -> None:
    """Extract the registry tables from the codec module's top level."""
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            continue
        name = targets[0].id
        if (
            name.isupper()
            and isinstance(value, ast.Constant)
            and isinstance(value.value, int)
            and not isinstance(value.value, bool)
            and name not in ("HEADER_SIZE", "MAX_FRAME")
        ):
            facts.constants[name] = (value.value, stmt.lineno)
        elif name == "FRAME_TYPE_NAMES" and isinstance(value, ast.Dict):
            for key, item in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Name)
                    and isinstance(item, ast.Constant)
                    and isinstance(item.value, str)
                ):
                    facts.type_names[key.id] = (item.value, key.lineno)
        elif name == "FRAME_DIRECTIONS" and isinstance(value, ast.Dict):
            for key, item in zip(value.keys, value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(item, ast.Tuple)
                    and len(item.elts) == 2
                    and all(
                        isinstance(role, ast.Constant)
                        and isinstance(role.value, str)
                        for role in item.elts
                    )
                ):
                    continue
                sender = item.elts[0].value  # type: ignore[attr-defined]
                receiver = item.elts[1].value  # type: ignore[attr-defined]
                facts.directions[key.value] = (sender, receiver, key.lineno)


def _send_family(call: ast.Call) -> str | None:
    """Payload family of an ``encode_frame``/``send_json`` call."""
    callee = _callee_name(call.func)
    if callee in ("send_json", "encode_json"):
        return "json"
    if callee != "encode_frame":
        return None
    if len(call.args) < 2:
        return "empty"
    payload = call.args[1]
    if isinstance(payload, ast.Call):
        family = _ENCODER_FAMILY.get(_callee_name(payload.func) or "")
        if family is not None:
            return family
    if isinstance(payload, ast.Constant) and payload.value in (b"", ""):
        return "empty"
    return None  # unknown payload expression: no family claim


def _scan_module(module: ModuleInfo, facts: ProtocolFacts) -> None:
    """Collect send sites and handler arms from one module."""
    frames = facts.frames
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            callee = _callee_name(node.func)
            if callee in ("send_json", "encode_json", "encode_frame") and node.args:
                frame = _frame_ref(node.args[0], frames)
                if frame is not None:
                    facts.sends.append(
                        SendSite(
                            module=module,
                            frame=frame,
                            family=_send_family(node),
                            node=node,
                        )
                    )
        elif isinstance(node, ast.If):
            frame = _handler_frame(node.test, frames)
            if frame is not None:
                families = frozenset(
                    family
                    for family in (
                        _DECODER_FAMILY.get(_callee_name(call.func) or "")
                        for stmt in node.body
                        for call in ast.walk(stmt)
                        if isinstance(call, ast.Call)
                    )
                    if family is not None
                )
                facts.handlers.append(
                    HandlerSite(
                        module=module, frame=frame, families=families, node=node
                    )
                )


def _handler_frame(test: ast.expr, frames: set[str]) -> str | None:
    """``frame_type == codec.X`` (either operand order) -> ``X``."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
    ):
        return None
    left, right = test.left, test.comparators[0]
    return _frame_ref(left, frames) or _frame_ref(right, frames)


def protocol_facts(project: ProjectContext) -> ProtocolFacts:
    """Build (and cache) the run's protocol facts from scanned modules."""
    cached = getattr(project, "_proto_facts", None)
    if isinstance(cached, ProtocolFacts):
        return cached
    facts = ProtocolFacts()
    for module in project.modules:
        if module.is_test_code:
            continue
        if facts.codec is None and _defines_registry(module):
            facts.codec = module
            _scan_codec(module, facts)
    if facts.codec is not None:
        for module in project.modules:
            if module.is_test_code or module is facts.codec:
                continue
            role = HANDLER_MODULES.get(module.basename)
            if role is not None:
                facts.present_roles.add(role)
            _scan_module(module, facts)
    project._proto_facts = facts  # type: ignore[attr-defined]  # repro: allow[INV001] own cache slot
    return facts


def _defines_registry(module: ModuleInfo) -> bool:
    """True for the module assigning ``FRAME_DIRECTIONS`` at top level."""
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "FRAME_DIRECTIONS":
                return True
    return False


@register
class MissingHandlerRule(Rule):
    """PROTO001: a declared frame has no handler in its receiver role.

    Checked only when the receiver role's handler state machine is part
    of the lint run (so linting a lone file never false-positives), and
    reported on the codec module at the frame constant's line.
    """

    id = "PROTO001"
    summary = "frame type lacking a handler in the declared receiver role"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        facts = protocol_facts(project)
        if facts.codec is not module:
            return
        present_roles = facts.present_roles
        handled = {
            (ROLE_OF_MODULE.get(site.module.basename), site.frame)
            for site in facts.handlers
        }
        for frame, (_, receiver, line) in sorted(facts.directions.items()):
            if receiver not in present_roles:
                continue
            if (receiver, frame) in handled:
                continue
            yield Finding(
                path=module.path,
                line=facts.constants.get(frame, (0, line))[1],
                col=1,
                rule=self.id,
                message=(
                    f"frame {frame} is declared {receiver}-bound but no "
                    f"{receiver} module handles it (no `frame_type == "
                    f"codec.{frame}` dispatch arm)"
                ),
            )


@register
class PayloadFamilyRule(Rule):
    """PROTO002: encode path and decode path disagree on the payload.

    A handler that decodes frame X as family *f* while every sender of
    X encodes family *g* will raise (or silently misparse) on the first
    live frame; the divergence is reported at the decode site.
    """

    id = "PROTO002"
    summary = "frame encode/decode payload-family divergence"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        facts = protocol_facts(project)
        if facts.codec is None:
            return
        send_families: dict[str, set[str]] = {}
        for site in facts.sends:
            if site.family is not None:
                send_families.setdefault(site.frame, set()).add(site.family)
        for site in facts.handlers:
            if site.module is not module:
                continue
            sent = send_families.get(site.frame, set()) - {"empty"}
            for family in sorted(site.families):
                if sent and family not in sent:
                    yield self.finding(
                        module,
                        site.node,
                        f"handler decodes {site.frame} as {family} but its "
                        f"sender(s) encode {'/'.join(sorted(sent))}",
                    )


@register
class UndeclaredSenderRule(Rule):
    """PROTO003: a module sends a frame outside its declared sender role.

    Each protocol module has one role (:data:`ROLE_OF_MODULE`); sending
    a frame whose registry entry names a different sender — or sending
    protocol frames from a module with no role at all — is drift
    between the registry and the implementation.
    """

    id = "PROTO003"
    summary = "send site outside the frame's declared sender role"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        facts = protocol_facts(project)
        if facts.codec is None:
            return
        role = ROLE_OF_MODULE.get(module.basename)
        for site in facts.sends:
            if site.module is not module:
                continue
            direction = facts.directions.get(site.frame)
            if direction is None:
                continue  # PROTO004's problem, reported once at the codec
            sender = direction[0]
            if role is None:
                yield self.finding(
                    module,
                    site.node,
                    f"sends {site.frame} but declares no protocol role "
                    "(add the module to ROLE_OF_MODULE or move the send)",
                )
            elif sender != role:
                yield self.finding(
                    module,
                    site.node,
                    f"sends {site.frame}, declared a {sender}-sent frame, "
                    f"from a {role} module",
                )


@register
class RegistryConsistencyRule(Rule):
    """PROTO004: the codec's own frame registry is inconsistent.

    Every frame constant must appear in ``FRAME_TYPE_NAMES`` (with its
    own name) and in ``FRAME_DIRECTIONS`` (with known roles), wire ids
    must be unique, and neither table may name unknown frames.
    """

    id = "PROTO004"
    summary = "frame registry inconsistency in the codec module"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        facts = protocol_facts(project)
        if facts.codec is not module:
            return
        by_value: dict[int, str] = {}
        for name, (value, line) in sorted(facts.constants.items()):
            if value in by_value:
                yield self._at(
                    module,
                    line,
                    f"frame constants {by_value[value]} and {name} share "
                    f"wire id {value}",
                )
            else:
                by_value[value] = name
            if name not in facts.type_names:
                yield self._at(
                    module, line, f"frame constant {name} missing from FRAME_TYPE_NAMES"
                )
            if name not in facts.directions:
                yield self._at(
                    module, line, f"frame constant {name} missing from FRAME_DIRECTIONS"
                )
        for name, (registered, line) in sorted(facts.type_names.items()):
            if registered != name:
                yield self._at(
                    module,
                    line,
                    f"FRAME_TYPE_NAMES registers {name} as {registered!r}",
                )
            if name not in facts.constants:
                yield self._at(
                    module,
                    line,
                    f"FRAME_TYPE_NAMES names {name}, which is not a frame constant",
                )
        for name, (sender, receiver, line) in sorted(facts.directions.items()):
            if name not in facts.constants:
                yield self._at(
                    module,
                    line,
                    f"FRAME_DIRECTIONS names {name}, which is not a frame constant",
                )
            for role in (sender, receiver):
                if role not in KNOWN_ROLES:
                    yield self._at(
                        module,
                        line,
                        f"FRAME_DIRECTIONS gives {name} unknown role {role!r}",
                    )

    def _at(self, module: ModuleInfo, line: int, message: str) -> Finding:
        return Finding(
            path=module.path, line=line, col=1, rule=self.id, message=message
        )
