"""Text and JSON rendering of lint findings.

The JSON document is versioned (``"schema": "repro-lint/1"``) so CI
consumers can evolve with the format: it carries the flat finding
list, per-rule counts, and the total.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from repro.analysis.core import Finding

JSON_SCHEMA = "repro-lint/1"


def render_text(findings: Iterable[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding plus a tally."""
    findings = list(findings)
    lines = [finding.render() for finding in findings]
    if findings:
        counts = Counter(finding.rule for finding in findings)
        tally = ", ".join(
            f"{rule}={count}" for rule, count in sorted(counts.items())
        )
        lines.append(f"{len(findings)} finding(s): {tally}")
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report; see :data:`JSON_SCHEMA` for the version."""
    findings = list(findings)
    counts = Counter(finding.rule for finding in findings)
    document = {
        "schema": JSON_SCHEMA,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)
