"""Dynamic checkers for the paper's structural invariants.

Each checker inspects one live structure and returns a list of
:class:`InvariantViolation` (empty = healthy), so callers choose their
own severity: tests assert emptiness, the chaos harness attaches the
audit to its recovery report, and the adaptation controller records a
post-migration audit every round.

The invariants come straight from the paper:

* **coordinator** — every non-root cluster keeps between ``k`` and
  ``3k − 1`` members and layer 0 partitions the membership (§3.2.1).
* **dissemination** — per-stream trees stay actual trees (bidirectional
  parent/child links, no cycles, fanout bound) and every edge filter is
  a superset of the interests registered below it, so early filtering
  never starves a query (§3.1).
* **delegation** — every stream an entity receives has exactly one
  delegation processor while the entity has any processor at all (§4).
* **hosting** — the allocator's assignment, the entities' hosted
  queries, and tree membership agree (§3.2.2 placement).
* **balance** — the partition imbalance of the current assignment stays
  under a caller-chosen bound (§3.2.2).
* **partitions** — partition-parallel deployments keep a consistent
  layout: one fragment per partition in index order, a router whose
  spec matches the fragment fan-out, and (when the entity's cluster is
  wide enough) partitions spread across distinct processors (§4.1).
* **sharing** — shared-computation groups stay well-formed: every
  member is hosted, tagged, and holds exactly its tap fragment, and the
  shared prefix fingerprints concatenated with each member's tap-suffix
  fingerprints reconstruct the member's own canonical pipeline, so the
  multi-query rewrite provably evaluates the same queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.dissemination.tree import SOURCE, DisseminationTree, TreeStructureError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.allocation.query_graph import QueryGraph
    from repro.coordination.tree import CoordinatorTree
    from repro.core.entity import Entity
    from repro.core.system import FederatedSystem


@dataclass(frozen=True)
class InvariantViolation:
    """One violated structural invariant.

    ``check`` names the checker ("coordinator", "dissemination",
    "delegation", "hosting", or "balance"), ``subject`` the entity,
    stream, or structure concerned, and ``detail`` is human-readable.
    """

    check: str
    subject: str
    detail: str

    def render(self) -> str:
        """Format as ``check(subject): detail``."""
        return f"{self.check}({self.subject}): {self.detail}"


def check_coordinator_tree(
    tree: "CoordinatorTree",
) -> list[InvariantViolation]:
    """§3.2.1 cluster-size bounds and partition/leader consistency.

    Wraps :meth:`CoordinatorTree.check_invariants`, which already
    verifies ``k <= |cluster| <= 3k - 1`` for every non-root cluster.
    """
    return [
        InvariantViolation("coordinator", "tree", problem)
        for problem in tree.check_invariants()
    ]


def check_dissemination_tree(
    tree: DisseminationTree,
) -> list[InvariantViolation]:
    """Tree structure + interest-superset consistency for one stream."""
    violations: list[InvariantViolation] = []
    stream = tree.stream_id

    # --- structural: bidirectional links, reachability, fanout -------
    for entity in tree.entities:
        parent = tree.parent_of(entity)
        if parent != SOURCE and not tree.contains(parent):
            violations.append(
                InvariantViolation(
                    "dissemination",
                    stream,
                    f"{entity}'s parent {parent} is not in the tree",
                )
            )
        elif entity not in tree.children_of(parent):
            violations.append(
                InvariantViolation(
                    "dissemination",
                    stream,
                    f"{entity} is not listed among {parent}'s children",
                )
            )
        try:
            tree.depth_of(entity)
        except TreeStructureError:
            violations.append(
                InvariantViolation(
                    "dissemination",
                    stream,
                    f"{entity} is unreachable from the source (cycle)",
                )
            )
    for node in [SOURCE, *tree.entities]:
        for child in tree.children_of(node):
            if not tree.contains(child) or tree.parent_of(child) != node:
                violations.append(
                    InvariantViolation(
                        "dissemination",
                        stream,
                        f"child link {node} -> {child} has no back link",
                    )
                )
        if tree.fanout(node) > tree.max_fanout:
            violations.append(
                InvariantViolation(
                    "dissemination",
                    stream,
                    f"{node} has fanout {tree.fanout(node)} "
                    f"> bound {tree.max_fanout}",
                )
            )

    # --- semantic: every edge filter covers the interests below it ---
    for entity in tree.entities:
        interests = tree.interests_of(entity)
        if not interests:
            continue
        node = entity
        hops = 0
        while node != SOURCE and hops <= len(tree.entities) + 1:
            aggregate = tree.subtree_filter(node)
            if aggregate is None:
                violations.append(
                    InvariantViolation(
                        "dissemination",
                        stream,
                        f"edge into {node} forwards nothing but "
                        f"{entity} registered interests below it",
                    )
                )
                break
            for interest in interests:
                if not aggregate.interest.covers(interest):
                    violations.append(
                        InvariantViolation(
                            "dissemination",
                            stream,
                            f"edge filter into {node} does not cover an "
                            f"interest of {entity} (early filtering "
                            "would starve it)",
                        )
                    )
            node = tree.parent_of(node)
            hops += 1
    return violations


def check_delegation(entity: "Entity") -> list[InvariantViolation]:
    """§4 delegation totality for one entity.

    Every stream the entity's hosted queries consume must have exactly
    one delegation processor, and that processor must still exist.  An
    entity that has lost *all* processors cannot delegate and is not
    reported here (recovery re-homes its queries instead).
    """
    violations: list[InvariantViolation] = []
    scheme = entity.delegation
    if not scheme.processor_ids:
        return violations
    for stream_id in sorted(entity.interests_by_stream()):
        delegate = scheme.delegate_of(stream_id)
        if delegate is None:
            violations.append(
                InvariantViolation(
                    "delegation",
                    entity.entity_id,
                    f"stream {stream_id} is consumed but has no "
                    "delegation processor",
                )
            )
        elif delegate not in scheme.processor_ids:
            violations.append(
                InvariantViolation(
                    "delegation",
                    entity.entity_id,
                    f"stream {stream_id} is delegated to missing "
                    f"processor {delegate}",
                )
            )
    return violations


def check_partitions(entity: "Entity") -> list[InvariantViolation]:
    """Partition-parallel layout consistency for one entity's queries.

    For every hosted query with a partitioned deployment: the fragment
    chain must be exactly pre + one fragment per partition (in index
    order) + merge, the router's spec must agree with that fan-out, and
    the partition fragments must sit on pairwise distinct processors
    whenever the entity has at least as many processors as partitions
    (the §4.1 spread constraint).
    """
    violations: list[InvariantViolation] = []
    procs_available = len(entity.processors)
    for query_id, hosted in sorted(entity.hosted.items()):
        deployment = hosted.partition
        if deployment is None:
            continue
        parts = len(deployment.parts)
        expected = parts + 2
        if len(hosted.fragments) != expected or len(
            hosted.chain_procs
        ) != len(hosted.fragments):
            violations.append(
                InvariantViolation(
                    "partitions",
                    query_id,
                    f"expected {expected} fragments (pre + {parts} "
                    f"partitions + merge) with matching processors, got "
                    f"{len(hosted.fragments)} fragments on "
                    f"{len(hosted.chain_procs)} processors",
                )
            )
            continue
        if deployment.router.spec.parts != parts:
            violations.append(
                InvariantViolation(
                    "partitions",
                    query_id,
                    f"router spec has {deployment.router.spec.parts} "
                    f"parts but the deployment has {parts} fragments",
                )
            )
        for index, stage in enumerate(deployment.stages):
            if stage.index != index:
                violations.append(
                    InvariantViolation(
                        "partitions",
                        query_id,
                        f"partition fragment at position {index} carries "
                        f"stage index {stage.index}",
                    )
                )
        part_procs = hosted.chain_procs[1:-1]
        if procs_available >= parts and len(set(part_procs)) != parts:
            violations.append(
                InvariantViolation(
                    "partitions",
                    query_id,
                    f"partitions share processors {sorted(part_procs)} "
                    f"despite {procs_available} being available",
                )
            )
    return violations


def check_sharing(entity: "Entity") -> list[InvariantViolation]:
    """Shared-computation layout consistency for one entity.

    For every shared group: at least two members, each hosted at this
    entity, tagged with the group id, holding exactly its tap fragment,
    with a tap processor assigned; the shared fragment's member list
    matches; and — semantically — the shared prefix fingerprints
    concatenated with each member's tap-suffix fingerprints must equal
    the member's own canonical fingerprint sequence, so the rewrite is
    provably evaluating the same query.  Conversely every hosted query
    tagged with a group id must appear in exactly that group.
    """
    violations: list[InvariantViolation] = []

    def bad(subject: str, detail: str) -> None:
        violations.append(InvariantViolation("sharing", subject, detail))

    seen_members: dict[str, str] = {}
    for gid, deployment in sorted(entity.shared.items()):
        group = deployment.group
        if gid != group.group_id:
            bad(gid, f"deployment key differs from group id {group.group_id}")
        if len(group.members) < 2:
            bad(gid, f"group has {len(group.members)} member(s), needs >= 2")
        if tuple(group.shared.members) != tuple(group.members):
            bad(
                gid,
                "shared fragment member list "
                f"{list(group.shared.members)} != group members "
                f"{list(group.members)}",
            )
        prefix_fps = tuple(
            op.fingerprint() for op in group.shared.operators
        )
        for qid in group.members:
            prev = seen_members.setdefault(qid, gid)
            if prev != gid:
                bad(qid, f"member of two groups: {prev} and {gid}")
            hosted = entity.hosted.get(qid)
            if hosted is None:
                bad(gid, f"member {qid} is not hosted at {entity.entity_id}")
                continue
            if hosted.shared_group != gid:
                bad(
                    qid,
                    f"hosted query tagged {hosted.shared_group}, group "
                    f"says {gid}",
                )
            tap = group.taps.get(qid)
            if tap is None:
                bad(gid, f"member {qid} has no tap fragment")
                continue
            if qid not in deployment.tap_procs:
                bad(gid, f"member {qid} has no tap processor assigned")
            if hosted.fragments != [tap]:
                bad(
                    qid,
                    "member's fragments are not exactly its tap fragment",
                )
            suffix_fps = tuple(
                op.fingerprint() for op in tap.operators[1:]
            )
            if prefix_fps + suffix_fps != hosted.spec.operator_fingerprints():
                bad(
                    qid,
                    "shared prefix + tap suffix fingerprints do not "
                    "reconstruct the member's canonical pipeline",
                )
    for query_id, hosted in sorted(entity.hosted.items()):
        gid = hosted.shared_group
        if gid is None:
            continue
        deployment = entity.shared.get(gid)
        if deployment is None:
            bad(query_id, f"tagged with unknown group {gid}")
        elif query_id not in deployment.group.members:
            bad(query_id, f"tagged with group {gid} but not a member of it")
    return violations


def check_allocation_balance(
    graph: "QueryGraph",
    assignment: dict[str, str],
    parts: int,
    *,
    threshold: float,
) -> list[InvariantViolation]:
    """§3.2.2 partition balance: max part load / ideal <= ``threshold``."""
    imbalance = graph.imbalance(assignment, parts)
    if imbalance > threshold:
        return [
            InvariantViolation(
                "balance",
                "assignment",
                f"imbalance {imbalance:.3f} exceeds bound {threshold:.3f}",
            )
        ]
    return []


def _check_hosting(
    system: "FederatedSystem",
    trees: dict[str, DisseminationTree],
    exclude: frozenset[str],
) -> list[InvariantViolation]:
    """Assignment ↔ hosted ↔ tree-membership agreement."""
    violations: list[InvariantViolation] = []
    assignment = (
        dict(system.allocation_result.assignment)
        if system.allocation_result is not None
        else {}
    )
    hosted_at = {
        query_id: entity_id
        for entity_id, entity in sorted(system.entities.items())
        if entity_id not in exclude
        for query_id in entity.hosted
    }
    for query_id, entity_id in sorted(hosted_at.items()):
        if assignment.get(query_id) != entity_id:
            violations.append(
                InvariantViolation(
                    "hosting",
                    query_id,
                    f"hosted at {entity_id} but assigned to "
                    f"{assignment.get(query_id)}",
                )
            )
    for query_id, entity_id in sorted(assignment.items()):
        if entity_id in exclude:
            continue
        if hosted_at.get(query_id) != entity_id:
            violations.append(
                InvariantViolation(
                    "hosting",
                    query_id,
                    f"assigned to {entity_id} but hosted at "
                    f"{hosted_at.get(query_id)}",
                )
            )
    for entity_id, entity in sorted(system.entities.items()):
        if entity_id in exclude:
            continue
        for stream_id, interests in sorted(
            entity.interests_by_stream().items()
        ):
            tree = trees.get(stream_id)
            if interests and tree is not None and not tree.contains(entity_id):
                violations.append(
                    InvariantViolation(
                        "hosting",
                        entity_id,
                        f"hosts queries on {stream_id} but is not in "
                        "its dissemination tree",
                    )
                )
    return violations


def audit_federation(
    system: "FederatedSystem",
    *,
    trees: dict[str, DisseminationTree] | None = None,
    exclude: Iterable[str] = (),
    graph: "QueryGraph | None" = None,
    parts: int | None = None,
    balance_threshold: float = 2.0,
) -> list[InvariantViolation]:
    """Run every structural check against a planned federation.

    Args:
        system: The planner (:class:`FederatedSystem`) to audit.
        trees: Dissemination trees to audit; defaults to the planner's
            own (the live runtime passes its dataflow's trees, which
            the migrator refreshes in place).
        exclude: Entity ids to skip — crashed entities in a chaos run
            legitimately violate delegation/hosting until re-homed.
        graph: Optional query graph; with ``parts`` enables the
            balance check.
        parts: Partition count for the balance check.
        balance_threshold: Bound for the balance check.
    """
    exclude_set = frozenset(exclude)
    violations: list[InvariantViolation] = []
    violations.extend(check_coordinator_tree(system.portal.tree))
    if trees is None:
        trees = {
            stream_id: runtime.tree
            for stream_id, runtime in sorted(system.dissemination.items())
        }
    for __, tree in sorted(trees.items()):
        violations.extend(
            violation
            for violation in check_dissemination_tree(tree)
            if not any(entity in violation.detail for entity in exclude_set)
        )
    for entity_id, entity in sorted(system.entities.items()):
        if entity_id not in exclude_set:
            violations.extend(check_delegation(entity))
            violations.extend(check_partitions(entity))
            violations.extend(check_sharing(entity))
    violations.extend(_check_hosting(system, trees, exclude_set))
    if graph is not None and parts is not None and parts > 0:
        assignment = (
            dict(system.allocation_result.assignment)
            if system.allocation_result is not None
            else {}
        )
        part_of = {
            entity_id: part
            for part, entity_id in enumerate(sorted(system.entities))
        }
        current = {
            query_id: part_of[entity_id]
            for query_id, entity_id in sorted(assignment.items())
            if entity_id in part_of and query_id in graph.vertex_weights
        }
        violations.extend(
            check_allocation_balance(
                graph, current, parts, threshold=balance_threshold
            )
        )
    return violations


def selfcheck(
    *, seed: int = 0, entity_count: int = 6, query_count: int = 60
) -> list[InvariantViolation]:
    """Build the demo federation and audit it (``python -m repro check``)."""
    from repro.allocation.query_graph import build_query_graph
    from repro.core.system import build_demo_system

    system, queries = build_demo_system(
        seed=seed, entity_count=entity_count, query_count=query_count
    )
    graph = build_query_graph(queries, system.catalog)
    return audit_federation(
        system,
        graph=graph,
        parts=len(system.entities),
        balance_threshold=3.0,
    )


def run_sharing_smoke(
    *, seed: int = 0, duration: float = 2.0
) -> list[InvariantViolation]:
    """Run the sharing workload shared and unshared; audit and compare.

    A shared-execution sim run must form at least one shared group
    (otherwise the smoke exercises nothing), pass the ``sharing``
    structural audit, and deliver exactly the result-tuple set of an
    unshared run of the same seed — the multi-query rewrite must be
    invisible in results.
    """
    from dataclasses import replace as _replace

    from repro.core.system import FederatedSystem
    from repro.workloads import sharing_workload

    catalog, config, queries = sharing_workload(seed)

    def run(shared: bool):
        system = FederatedSystem(
            catalog, _replace(config, shared_execution=shared)
        )
        system.submit(queries)
        observed: set[tuple[str, str, int]] = set()

        def wrap(handler):
            def wrapped(query_id, tup):
                observed.add((query_id, tup.stream_id, tup.seq))
                handler(query_id, tup)

            return wrapped

        for entity in system.entities.values():
            if entity.result_handler is not None:
                entity.result_handler = wrap(entity.result_handler)
        system.run(duration=duration)
        system.sim.run()
        return system, observed

    shared_system, shared_keys = run(True)
    __, unshared_keys = run(False)
    violations = audit_federation(shared_system)
    groups = sum(
        len(entity.shared) for entity in shared_system.entities.values()
    )
    if groups == 0:
        violations.append(
            InvariantViolation(
                "sharing-smoke",
                "federation",
                "the overlap workload formed no shared group",
            )
        )
    if not shared_keys:
        violations.append(
            InvariantViolation(
                "sharing-smoke",
                "federation",
                "the shared smoke run delivered zero results",
            )
        )
    if shared_keys != unshared_keys:
        violations.append(
            InvariantViolation(
                "sharing-smoke",
                "federation",
                f"shared run delivered {len(shared_keys)} result keys, "
                f"unshared {len(unshared_keys)} — sets differ",
            )
        )
    return violations


def run_partition_smoke(
    *, seed: int = 0, duration: float = 1.2
) -> list[InvariantViolation]:
    """Run the partition workload adaptively and audit after rebalances.

    The skew threshold is set low enough that the Zipf-skewed tape
    triggers at least one skew rebalance during the run — the audit
    then proves the close → drain → rebalance → open swap left every
    partitioned deployment structurally intact (fragment layout, router
    spec, §4.1 processor spread).  Zero rebalances is itself a
    violation: a smoke that never exercises the trigger proves nothing.
    """
    from repro.live import LiveSettings
    from repro.live.adaptation import AdaptationSettings, AdaptiveRuntime
    from repro.workloads import partition_workload

    catalog, config, queries = partition_workload(seed)
    runtime = AdaptiveRuntime(
        catalog,
        config,
        LiveSettings(duration=duration, batch_size=4),
        AdaptationSettings(period=0.4, partition_skew_threshold=1.2),
    )
    runtime.submit(queries)
    runtime.run()
    violations = audit_federation(
        runtime.planner, trees=runtime.dataflow.trees
    )
    if runtime.adaptation_metrics.partition_rebalances == 0:
        violations.append(
            InvariantViolation(
                "partition-smoke",
                "federation",
                "the skewed smoke run triggered no partition rebalance",
            )
        )
    if not runtime.results:
        violations.append(
            InvariantViolation(
                "partition-smoke",
                "federation",
                "the partition smoke run delivered zero results",
            )
        )
    return violations


def run_control_smoke(
    *, seed: int = 7, duration: float = 2.0
) -> list[InvariantViolation]:
    """Run a short live churn under the control plane and audit it.

    Every scripted lifecycle event must be accounted for (each arrival
    admitted, deferred-then-admitted, rejected, or still queued; each
    departure honoured), the post-churn federation must pass the full
    structural audit, and the run must deliver results for more than
    one tenant — a churn smoke that admits nothing proves nothing.
    """
    from repro.control import ControlRuntime
    from repro.live import LiveSettings
    from repro.workloads import churn_workload

    catalog, config, queries, events = churn_workload(
        seed=seed,
        duration=duration,
        churn_per_minute=240.0,
        quota_rate=200.0,
    )
    runtime = ControlRuntime(
        catalog, config, LiveSettings(duration=duration), events=events
    )
    runtime.submit(queries)
    report = runtime.run()
    violations = audit_federation(
        runtime.planner, trees=runtime.dataflow.trees
    )
    control = report.control
    registers = sum(1 for e in events if e.action == "register")
    if control.arrivals != registers:
        violations.append(
            InvariantViolation(
                "control-smoke",
                "federation",
                f"{registers} scripted arrivals but the plane saw "
                f"{control.arrivals}",
            )
        )
    settled = (
        control.registered + control.rejected + control.stranded_in_queue
    )
    if settled != control.arrivals:
        violations.append(
            InvariantViolation(
                "control-smoke",
                "federation",
                f"{control.arrivals} arrivals but only {settled} "
                "admitted + rejected + still queued",
            )
        )
    if control.departures != len(events) - registers:
        violations.append(
            InvariantViolation(
                "control-smoke",
                "federation",
                f"{len(events) - registers} scripted departures but "
                f"the plane saw {control.departures}",
            )
        )
    if control.registered == 0:
        violations.append(
            InvariantViolation(
                "control-smoke",
                "federation",
                "the churn smoke admitted no arrivals",
            )
        )
    if len(control.delivered_by_tenant) < 2:
        violations.append(
            InvariantViolation(
                "control-smoke",
                "federation",
                "fewer than two tenants delivered results",
            )
        )
    return violations
