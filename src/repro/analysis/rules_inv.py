"""INV rule pack: encapsulation of invariant-bearing structures.

The coordinator tree, dissemination trees, delegation scheme, and
allocation assignment all maintain paper-mandated invariants through
their public mutation APIs.  Code that reaches into another module's
private state can update one side of a structural invariant without
the other, which is exactly the class of bug the dynamic auditor in
:mod:`repro.analysis.invariants` exists to catch after the fact — this
rule catches it before.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleInfo,
    ProjectContext,
    Rule,
    register,
)

#: Private names that are public-by-convention stdlib idioms.
_IDIOMATIC = frozenset({"_replace", "_asdict", "_fields", "_make"})


def _receiver_is_local(expr: ast.expr) -> bool:
    """True when the attribute receiver is the object's own family.

    ``self`` / ``cls`` and ``super()`` receivers are in-family by
    definition; flagging them would outlaw ordinary implementation.
    """
    if isinstance(expr, ast.Name) and expr.id in {"self", "cls"}:
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "super"
    )


@register
class CrossModulePrivateRule(Rule):
    """INV001: cross-module access to another object's private state.

    ``obj._attr`` is allowed when the current module itself defines
    ``_attr`` (same-module access is one maintenance boundary — e.g.
    ``other._intervals`` inside the module that owns ``IntervalSet``),
    and in tests, which probe internals on purpose.  Anything else
    bypasses the API that maintains the structural invariants.
    """

    id = "INV001"
    summary = "cross-module private attribute access"

    def check(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Flag foreign ``obj._attr`` reads/calls in library code."""
        if module.is_test_code:
            return
        own = project.module_privates(module.path)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            if attr in _IDIOMATIC or attr in own:
                continue
            if _receiver_is_local(node.value):
                continue
            yield self.finding(
                module,
                node,
                f"`.{attr}` is private to another module; use the public "
                "API so structural invariants stay maintained",
            )
