"""Happens-before race detection over shared mutable runtime state.

Vector clocks are kept per asyncio task; synchronization edges come from
the runtime's real ordering devices — channel put/get, ``WorkTracker``
done/wait_quiescent, ``FeedGate`` open/wait_open, credit acquisition —
plus a "serialized" edge for the control-plane mutation sections that
the single-threaded event loop executes atomically (no ``await`` inside;
see ``docs/static_analysis.md`` for the scoping argument).

Shared dicts are wrapped in :class:`TrackedState`; every access records
the task, its clock snapshot, and the call site.  Races are reported as
:class:`~repro.analysis.core.Finding` objects with ``DRD0xx`` rule ids
and honour the standard ``# repro: allow[...]`` suppression grammar at
the recorded call site.

Rules:

``DRD001``  unordered write/write on tracked state
``DRD002``  dataflow read unordered with a control-plane write
``DRD003``  quiesce-protected state written while the dataflow is live
``DRD004``  credit window widened beyond the receiver's initial grant
"""

from __future__ import annotations

import asyncio
import sys
from collections.abc import Callable, Coroutine, Iterator, MutableMapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis.core import Finding
from repro.analysis.suppressions import Suppressions

__all__ = ["DRD_RULES", "AccessSite", "HBMonitor", "TrackedState", "VectorClock"]

#: Rule ids and one-line summaries for the dynamic race-detector pack.
DRD_RULES: dict[str, str] = {
    "DRD001": "unordered write/write on shared runtime state",
    "DRD002": "dataflow read unordered with a control-plane write",
    "DRD003": "quiesce-protected state written while dataflow is live",
    "DRD004": "credit window widened beyond the initial grant",
}

#: Task-name prefixes whose reads count as dataflow reads for DRD002.
#: Control-plane tasks read shared state too, but their synchronous
#: blocks are serialized by the event loop and checked via DRD001 on
#: the write side instead (see docs — this avoids the classic HB false
#: positive on cooperative schedulers).
DATAFLOW_TASK_PREFIXES: tuple[str, ...] = (
    "live:src/",
    "live:gateway/",
    "live:proc/",
    "live:results",
    "race:dataflow",
)

_OWN_FILES = ("concurrency/hb.py", "concurrency/instrument.py")


class VectorClock:
    """Sparse vector clock keyed by monitor-assigned task id."""

    __slots__ = ("_clock",)

    def __init__(self, clock: dict[int, int] | None = None) -> None:
        self._clock: dict[int, int] = dict(clock) if clock else {}

    def copy(self) -> VectorClock:
        """Return an independent copy of this clock."""
        return VectorClock(self._clock)

    def tick(self, tid: int) -> None:
        """Advance task ``tid``'s own component."""
        self._clock[tid] = self._clock.get(tid, 0) + 1

    def join(self, other: VectorClock) -> None:
        """Merge ``other`` into this clock (componentwise max)."""
        for tid, stamp in other._clock.items():
            if stamp > self._clock.get(tid, 0):
                self._clock[tid] = stamp

    def happened_before(self, other: VectorClock) -> bool:
        """True if every event in ``self`` is visible in ``other``."""
        return all(stamp <= other._clock.get(tid, 0) for tid, stamp in self._clock.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"{tid}:{stamp}" for tid, stamp in sorted(self._clock.items()))
        return f"VC({inner})"


@dataclass(frozen=True)
class AccessSite:
    """Source location of a tracked-state access."""

    path: str
    line: int

    def render(self) -> str:
        """Format the access as ``task @ file:line``."""
        return f"{self.path}:{self.line}"


def _caller_site() -> AccessSite:
    """First stack frame outside the sanitizer's own modules."""
    depth = 2
    while True:
        # repro: allow[INV001] frame walking needs the CPython accessor
        frame = sys._getframe(depth)
        filename = frame.f_code.co_filename
        # Skip our own frames and synthetic ones (``<frozen ...>``
        # frames from the MutableMapping mixins, eval/exec shims).
        if not filename.endswith(_OWN_FILES) and not filename.startswith("<"):
            return AccessSite(path=filename, line=frame.f_lineno)
        depth += 1


@dataclass
class _Access:
    tid: int
    task: str
    clock: VectorClock
    site: AccessSite


@dataclass
class _RaceEvent:
    rule: str
    state: str
    key: object
    message: str
    site: AccessSite


class _Cell:
    """Per-key access history: the last write plus last read per task."""

    __slots__ = ("last_write", "reads")

    def __init__(self) -> None:
        self.last_write: _Access | None = None
        self.reads: dict[int, _Access] = {}


class HBMonitor:
    """Vector-clock happens-before monitor for one scheduled run."""

    def __init__(self) -> None:
        self._task_ids: dict[int, int] = {}
        self._task_names: dict[int, str] = {0: "main"}
        self._clocks: dict[int, VectorClock] = {0: VectorClock()}
        self._next_tid = 1
        # Tasks must stay alive for the monitor's lifetime: ``id()`` of
        # a collected task is reused, and a recycled key would hand a
        # brand-new task a dead task's (stale) clock.
        self._retained: list[asyncio.Task[Any]] = []
        self._sync: dict[int, VectorClock] = {}
        self._cells: dict[tuple[str, object], _Cell] = {}
        self._iter_cells: dict[str, _Cell] = {}
        self._events: list[_RaceEvent] = []
        self._seen: set[tuple[str, str, int, str]] = set()
        #: State-name prefixes that must only be written under quiescence.
        self.protected: set[str] = set()
        #: Callable answering "is the dataflow quiescent right now?".
        self.quiescent: Callable[[], bool] | None = None

    # -- task identity --------------------------------------------------

    def _tid_for(self, task: asyncio.Task[Any] | None) -> int:
        if task is None:
            return 0
        key = id(task)
        tid = self._task_ids.get(key)
        if tid is None:
            # A task created before the factory was installed (e.g. the
            # runner's root task): register it with the main clock.
            tid = self._register(task, self._clocks[0].copy())
        return tid

    def _register(self, task: asyncio.Task[Any], clock: VectorClock) -> int:
        tid = self._next_tid
        self._next_tid += 1
        self._task_ids[id(task)] = tid
        self._task_names[tid] = task.get_name()
        clock.tick(tid)
        self._clocks[tid] = clock
        self._retained.append(task)
        return tid

    def _current(self) -> tuple[int, VectorClock]:
        try:
            task = asyncio.current_task()
        except RuntimeError:
            task = None
        tid = self._tid_for(task)
        name = task.get_name() if task is not None else "main"
        self._task_names[tid] = name
        return tid, self._clocks[tid]

    def task_factory(
        self, loop: asyncio.AbstractEventLoop, coro: Coroutine[Any, Any, Any], **kwargs: Any
    ) -> asyncio.Task[Any]:
        """Install via ``loop.set_task_factory`` for parent→child edges."""
        tid, clock = self._current()
        clock.tick(tid)
        task: asyncio.Task[Any] = asyncio.Task(coro, loop=loop, **kwargs)
        self._register(task, clock.copy())
        return task

    def task_name(self, tid: int) -> str:
        """Human-readable name of a monitor-assigned task id."""
        return self._task_names.get(tid, f"task-{tid}")

    # -- synchronization edges ------------------------------------------

    def sync_release(self, obj: object) -> None:
        """Publish the current task's clock into ``obj``'s sync clock."""
        tid, clock = self._current()
        store = self._sync.setdefault(id(obj), VectorClock())
        store.join(clock)
        clock.tick(tid)

    def sync_acquire(self, obj: object) -> None:
        """Absorb ``obj``'s sync clock into the current task's clock."""
        _, clock = self._current()
        store = self._sync.get(id(obj))
        if store is not None:
            clock.join(store)

    def serialized_enter(self, token: object) -> None:
        """Start of an atomic (await-free) control-plane mutation block."""
        self.sync_acquire(token)

    def serialized_exit(self, token: object) -> None:
        """End of an atomic control-plane mutation block."""
        self.sync_release(token)

    # -- tracked accesses -----------------------------------------------

    def _is_dataflow(self, tid: int) -> bool:
        name = self.task_name(tid)
        return name.startswith(DATAFLOW_TASK_PREFIXES)

    def _record(self, rule: str, state: str, key: object, message: str, site: AccessSite) -> None:
        fingerprint = (rule, site.path, site.line, message)
        if fingerprint in self._seen:
            return
        self._seen.add(fingerprint)
        self._events.append(_RaceEvent(rule=rule, state=state, key=key, message=message, site=site))

    def on_read(self, state: str, key: object) -> None:
        """Record a read of ``state[key]`` by the current task."""
        tid, clock = self._current()
        site = _caller_site()
        access = _Access(tid=tid, task=self.task_name(tid), clock=clock.copy(), site=site)
        cell = self._cells.setdefault((state, key), _Cell())
        self._check_read(state, key, cell, access)
        cell.reads[tid] = access
        if self._is_dataflow(tid):
            iter_cell = self._iter_cells.setdefault(state, _Cell())
            iter_cell.reads[tid] = access

    def on_iterate(self, state: str) -> None:
        """Whole-state read (iteration, len, copy)."""
        tid, clock = self._current()
        site = _caller_site()
        access = _Access(tid=tid, task=self.task_name(tid), clock=clock.copy(), site=site)
        iter_cell = self._iter_cells.setdefault(state, _Cell())
        self._check_read(state, "*", iter_cell, access)
        iter_cell.reads[tid] = access

    def on_write(self, state: str, key: object) -> None:
        """Record a write of ``state[key]``; check against prior accesses."""
        tid, clock = self._current()
        site = _caller_site()
        access = _Access(tid=tid, task=self.task_name(tid), clock=clock.copy(), site=site)
        cell = self._cells.setdefault((state, key), _Cell())
        iter_cell = self._iter_cells.setdefault(state, _Cell())
        self._check_write(state, key, cell, iter_cell, access)
        cell.last_write = access
        cell.reads.clear()
        iter_cell.last_write = access
        clock.tick(tid)

    def _check_read(self, state: str, key: object, cell: _Cell, access: _Access) -> None:
        write = cell.last_write
        if (
            write is not None
            and write.tid != access.tid
            and not write.clock.happened_before(access.clock)
            and self._is_dataflow(access.tid)
        ):
            self._record(
                "DRD002",
                state,
                key,
                f"read of {state}[{key!r}] in task {access.task} races write "
                f"in task {write.task} at {write.site.render()}",
                access.site,
            )

    def _check_write(
        self, state: str, key: object, cell: _Cell, iter_cell: _Cell, access: _Access
    ) -> None:
        write = cell.last_write
        if (
            write is not None
            and write.tid != access.tid
            and not write.clock.happened_before(access.clock)
        ):
            self._record(
                "DRD001",
                state,
                key,
                f"write to {state}[{key!r}] in task {access.task} races write "
                f"in task {write.task} at {write.site.render()}",
                access.site,
            )
        for readers in (cell.reads, iter_cell.reads):
            for reader in readers.values():
                if (
                    reader.tid != access.tid
                    and self._is_dataflow(reader.tid)
                    and not reader.clock.happened_before(access.clock)
                ):
                    self._record(
                        "DRD002",
                        state,
                        key,
                        f"write to {state}[{key!r}] in task {access.task} races read "
                        f"in task {reader.task} at {reader.site.render()}",
                        access.site,
                    )
        if (
            self.protected
            and state.startswith(tuple(self.protected))
            and self.quiescent is not None
            and not self.quiescent()
        ):
            self._record(
                "DRD003",
                state,
                key,
                f"write to quiesce-protected {state}[{key!r}] in task {access.task} "
                "while the dataflow is not quiescent",
                access.site,
            )

    def on_credit_release(self, label: str, available: int, initial: int) -> None:
        """Credit-window bound check (DRD004) for ``CreditGate.release``."""
        if available > initial:
            site = _caller_site()
            self._record(
                "DRD004",
                "credit",
                label,
                f"credit window for {label} widened to {available} above the "
                f"initial grant of {initial}",
                site,
            )

    # -- reporting ------------------------------------------------------

    @property
    def race_count(self) -> int:
        return len(self._events)

    def findings(self, *, root: Path | None = None) -> list[Finding]:
        """Render race events as findings, honouring ``# repro: allow``.

        Suppressions are looked up in the source file each event was
        recorded in, so an intentional unsynchronized access can be
        annotated exactly like a static lint finding.
        """
        base = root or Path.cwd()
        suppressions: dict[str, Suppressions] = {}
        findings: list[Finding] = []
        for event in self._events:
            path = Path(event.site.path)
            if path.as_posix() not in suppressions:
                try:
                    source = path.read_text(encoding="utf-8")
                except OSError:
                    source = ""
                suppressions[path.as_posix()] = Suppressions.from_source(source)
            if suppressions[path.as_posix()].is_suppressed(event.rule, event.site.line):
                continue
            try:
                rel = path.relative_to(base).as_posix()
            except ValueError:
                rel = path.as_posix()
            findings.append(
                Finding(path=rel, line=event.site.line, col=1, rule=event.rule, message=event.message)
            )
        return sorted(set(findings))


class TrackedState(MutableMapping[Any, Any]):
    """Opt-in dict wrapper reporting every access to an :class:`HBMonitor`.

    Implements the full ``MutableMapping`` protocol so it can replace a
    plain dict anywhere in the runtime; the underlying storage is the
    *original* dict object, so aliases that were captured before
    wrapping still observe mutations (and vice versa).
    """

    __slots__ = ("_data", "_monitor", "_state")

    def __init__(self, data: MutableMapping[Any, Any], monitor: HBMonitor, state: str) -> None:
        self._data = data
        self._monitor = monitor
        self._state = state

    def __getitem__(self, key: Any) -> Any:
        self._monitor.on_read(self._state, key)
        return self._data[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        self._monitor.on_write(self._state, key)
        self._data[key] = value

    def __delitem__(self, key: Any) -> None:
        self._monitor.on_write(self._state, key)
        del self._data[key]

    def __contains__(self, key: Any) -> bool:
        self._monitor.on_read(self._state, key)
        return key in self._data

    def __iter__(self) -> Iterator[Any]:
        self._monitor.on_iterate(self._state)
        return iter(list(self._data))

    def __len__(self) -> int:
        self._monitor.on_iterate(self._state)
        return len(self._data)

    def __repr__(self) -> str:
        return f"TrackedState({self._state}, {self._data!r})"
