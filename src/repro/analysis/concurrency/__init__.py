"""Concurrency sanitizer: scheduled interleavings + happens-before races.

Three cooperating pieces, all opt-in (production runtimes are untouched):

``schedule``
    :class:`ScheduledLoop` — a :class:`~repro.live.chaos.VirtualClockLoop`
    whose ready queue is permuted by a seeded :class:`ScheduleController`,
    turning asyncio task interleaving into a searchable, replayable input.
``hb``
    :class:`HBMonitor` — vector-clock happens-before tracking over shared
    mutable runtime state, reporting ``DRD0xx`` findings through the
    standard :class:`~repro.analysis.core.Finding` machinery.
``instrument``
    Wires a monitor into a live runtime: wraps gates/trackers/channels as
    synchronization edges and shared dicts as :class:`TrackedState`.
``explorer``
    ``python -m repro race`` driver: explores N seeded interleavings of
    the migration/rebalance/admission scenarios, validates invariants and
    result-set parity, and writes replayable traces for any failure.
"""

from repro.analysis.concurrency.explorer import (
    RaceExplorer,
    RaceFailure,
    RaceRunResult,
    SCENARIOS,
)
from repro.analysis.concurrency.hb import DRD_RULES, HBMonitor, TrackedState
from repro.analysis.concurrency.schedule import (
    PreemptionBounded,
    RandomWalk,
    ScheduleController,
    ScheduledLoop,
    ScheduleTrace,
    format_trace,
    parse_trace,
)

__all__ = [
    "DRD_RULES",
    "HBMonitor",
    "PreemptionBounded",
    "RaceExplorer",
    "RaceFailure",
    "RaceRunResult",
    "RandomWalk",
    "SCENARIOS",
    "ScheduleController",
    "ScheduleTrace",
    "ScheduledLoop",
    "TrackedState",
    "format_trace",
    "parse_trace",
]
