"""Wire an :class:`HBMonitor` into a live runtime.

Everything here is per-instance monkey wrapping, installed from the
explorer's ``_start_extras`` hook — production runtimes never pay for
it.  Three kinds of hooks:

* **synchronization edges** — the runtime's real ordering devices
  (``LiveChannel`` put/get, ``WorkTracker`` done/wait_quiescent,
  ``FeedGate`` close/open/wait_open, ``CreditGate`` acquire/release)
  become vector-clock release/acquire points;
* **serialized sections** — the control plane's synchronous mutation
  blocks (transfer, register, retire, reshare, rebalance, abort
  repair) run atomically on the single-threaded loop, so they chain
  through one shared token in observed order;
* **tracked state** — the shared dicts migration can corrupt (head
  routes, fragment/downstream tables, hosted/sharing maps, delegation
  tables, partition specs) are wrapped in :class:`TrackedState`.

The per-tuple metrics dicts are deliberately *not* tracked: the load
sampler reads them unsynchronized by design (stale samples only skew
heuristics, never results), and tracking them would bury real races in
noise.
"""

from __future__ import annotations

import functools
from collections.abc import Awaitable, Callable
from typing import Any

from repro.analysis.concurrency.hb import HBMonitor, TrackedState
from repro.distributed.links import CreditGate
from repro.live.channels import LiveChannel
from repro.live.entity_task import FeedGate
from repro.live.runtime import LiveDataflow, LiveRuntime
from repro.live.transport import WorkTracker

__all__ = ["install_runtime_instrumentation", "wrap_credit_gate"]

#: State-name prefixes that may only be written under full quiescence.
PROTECTED_PREFIXES: tuple[str, ...] = (
    "head_routes/",
    "fragments/",
    "downstream/",
    "hosted/",
    "sharing/",
    "delegation/",
    "partition",
)


def wrap_channel(channel: LiveChannel, monitor: HBMonitor) -> None:
    """Channel hand-off = release at ``put``, acquire after ``get``."""
    orig_put: Callable[[Any], Awaitable[None]] = channel.put
    orig_get: Callable[[], Awaitable[Any]] = channel.get

    async def put(item: Any) -> None:
        # Release *before* the enqueue: the consumer may run between
        # the append and the producer resuming, and must already see
        # the producer's clock when it acquires.
        monitor.sync_release(channel)
        await orig_put(item)

    async def get() -> Any:
        item = await orig_get()
        monitor.sync_acquire(channel)
        return item

    channel.put = put  # type: ignore[method-assign]
    channel.get = get  # type: ignore[method-assign]


def wrap_tracker(tracker: WorkTracker, monitor: HBMonitor) -> None:
    """``done`` publishes the worker's clock; quiescence absorbs all."""
    orig_done = tracker.done
    orig_wait = tracker.wait_quiescent

    def done(n: int = 1) -> None:
        monitor.sync_release(tracker)
        orig_done(n)

    async def wait_quiescent() -> None:
        await orig_wait()
        monitor.sync_acquire(tracker)

    tracker.done = done  # type: ignore[method-assign]
    tracker.wait_quiescent = wait_quiescent  # type: ignore[method-assign]


def wrap_gate(gate: FeedGate, monitor: HBMonitor) -> None:
    """Gate reopen publishes the mutator's clock to every parked feed."""
    orig_close = gate.close
    orig_open = gate.open
    orig_wait = gate.wait_open

    def close() -> None:
        monitor.sync_release(gate)
        orig_close()

    def open_() -> None:
        monitor.sync_release(gate)
        orig_open()

    async def wait_open() -> None:
        await orig_wait()
        monitor.sync_acquire(gate)

    gate.close = close  # type: ignore[method-assign]
    gate.open = open_  # type: ignore[method-assign]
    gate.wait_open = wait_open  # type: ignore[method-assign]


def wrap_credit_gate(gate: CreditGate, monitor: HBMonitor, label: str) -> None:
    """Credit edges plus the DRD004 window-bound check after release."""
    orig_acquire = gate.acquire
    orig_release = gate.release

    async def acquire(n: int = 1) -> None:
        await orig_acquire(n)
        monitor.sync_acquire(gate)

    async def release(n: int = 1) -> None:
        monitor.sync_release(gate)
        await orig_release(n)
        monitor.on_credit_release(label, gate.available, gate.initial)

    gate.acquire = acquire  # type: ignore[method-assign]
    gate.release = release  # type: ignore[method-assign]


def _wrap_serialized(obj: Any, name: str, monitor: HBMonitor, token: object) -> None:
    orig = getattr(obj, name)

    @functools.wraps(orig)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        monitor.serialized_enter(token)
        try:
            return orig(*args, **kwargs)
        finally:
            monitor.serialized_exit(token)

    setattr(obj, name, wrapper)


def install_runtime_instrumentation(monitor: HBMonitor, runtime: LiveRuntime, flow: LiveDataflow) -> None:
    """Hook every shared-state access path of a built dataflow.

    Must run after ``_start_extras`` created the adaptation controller
    (so the migrator exists) and before the dataflow tasks start (so no
    access goes unrecorded).
    """
    monitor.protected.update(PROTECTED_PREFIXES)
    monitor.quiescent = lambda: flow.tracker.in_flight == 0

    # -- synchronization edges ----------------------------------------
    wrap_tracker(flow.tracker, monitor)
    for channel in flow.all_channels():
        wrap_channel(channel, monitor)
    gate = getattr(runtime, "gate", None)
    if gate is not None:
        wrap_gate(gate, monitor)

    # -- serialized control-plane mutation sections -------------------
    token = object()
    controller = getattr(runtime, "controller", None)
    if controller is not None:
        migrator = controller.migrator
        for name in (
            "_transfer",
            "register_query",
            "retire_query",
            "reshare",
            "_reshare_entity",
            "refresh_trees",
            "_refresh_trees",
            "_abort_repair",
        ):
            _wrap_serialized(migrator, name, monitor, token)
    planner = runtime.planner
    for name in ("adopt_query", "drop_query"):
        if hasattr(planner, name):
            _wrap_serialized(planner, name, monitor, token)

    # -- tracked shared state -----------------------------------------
    for entity_id, entity in planner.entities.items():
        entity.hosted = TrackedState(entity.hosted, monitor, f"hosted/{entity_id}")
        entity.shared = TrackedState(entity.shared, monitor, f"sharing/{entity_id}")
        scheme = entity.delegation
        table = scheme._delegate  # repro: allow[INV001] wrapping internal table
        scheme._delegate = TrackedState(  # repro: allow[INV001] wrapping internal table
            table, monitor, f"delegation/{entity_id}"
        )
        for hosted in entity.hosted.values():
            deployment = getattr(hosted, "partition", None)
            if deployment is not None:
                _wrap_router(deployment, monitor, token)

    shared_tables: dict[int, TrackedState] = {}
    for (entity_id, proc_id), proc in flow.processors.items():
        table = shared_tables.get(id(proc.head_routes))
        if table is None:
            table = TrackedState(proc.head_routes, monitor, f"head_routes/{entity_id}")
            shared_tables[id(proc.head_routes)] = table
        proc.head_routes = table
        proc.fragments = TrackedState(proc.fragments, monitor, f"fragments/{proc_id}")
        proc.downstream = TrackedState(proc.downstream, monitor, f"downstream/{proc_id}")


def _wrap_router(deployment: Any, monitor: HBMonitor, token: object) -> None:
    """Partition spec: ``route`` reads it, ``repartition`` swaps it."""
    router = deployment.router
    query_id = deployment.query_id
    orig_route = router.route
    orig_repartition = router.repartition

    def route(tup: Any) -> Any:
        monitor.on_read("partition", query_id)
        return orig_route(tup)

    def repartition(spec: Any) -> Any:
        monitor.serialized_enter(token)
        try:
            monitor.on_write("partition", query_id)
            return orig_repartition(spec)
        finally:
            monitor.serialized_exit(token)

    router.route = route
    router.repartition = repartition
