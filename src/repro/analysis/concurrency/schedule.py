"""Deterministic interleaving control for the asyncio runtimes.

The live runtimes are cooperative: every observable interleaving is a
permutation of the event loop's ready queue at each pass.  The chaos
harness already owns virtual time (:class:`VirtualClockLoop`); this
module adds the other axis — *order* — by overriding the loop's
``_reorder_ready`` hook with a seeded permutation strategy.

Determinism contract: given the same code, scenario, strategy, and seed,
the explored interleaving is bit-identical, so a failing schedule is
replayed simply by re-running with the recorded parameters.  Each run
additionally records a decision count and a CRC over the emitted
permutations; replay verifies both so silent divergence (e.g. code
drift) is reported instead of masquerading as a fixed bug.

Trace files use the same ``key=value`` line grammar as the chaos
scripts (:func:`repro.live.chaos.format_script`).
"""

from __future__ import annotations

import asyncio
import random
import re
import zlib
from collections.abc import MutableSequence, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.live.chaos import VirtualClockLoop

if TYPE_CHECKING:
    from collections import deque

__all__ = [
    "PreemptionBounded",
    "RandomWalk",
    "STRATEGIES",
    "ScheduleController",
    "ScheduleStrategy",
    "ScheduleTrace",
    "ScheduledLoop",
    "format_trace",
    "parse_trace",
    "task_label",
]

# Task-name fragments that mark control-plane critical sections: the
# adaptation round (migration + rebalance), the control plane's
# admission window, and the chaos script driver.  The preemption-bounded
# strategy concentrates its perturbations on passes where one of these
# is runnable — i.e. around the await points inside migration /
# rebalance / admission critical sections.
FOCUS_LABELS: tuple[str, ...] = (
    "live:adaptation",
    "live:control",
    "chaos:script",
    "dist:admission",
    "race:",
)


def task_label(handle: asyncio.Handle) -> str:
    """Stable, human-readable label for a ready-queue callback."""
    # repro: allow-file[INV001] schedule control requires asyncio internals
    callback = getattr(handle, "_callback", None)
    owner = getattr(callback, "__self__", None)
    if isinstance(owner, asyncio.Task):
        return owner.get_name()
    qualname = getattr(callback, "__qualname__", None)
    if qualname is not None:
        return str(qualname)
    return type(callback).__name__


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


class ScheduleStrategy:
    """Seeded policy mapping a ready queue to a permutation.

    ``reorder`` receives the labels of the runnable callbacks and
    returns a permutation of their indices, or ``None`` to keep FIFO
    order.  Strategies must be deterministic functions of their seed
    and the observed label sequences.
    """

    name = "fifo"

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = random.Random(seed)

    def params(self) -> dict[str, str]:
        """Strategy parameters serialized into trace files."""
        return {}

    def reorder(self, labels: Sequence[str]) -> Sequence[int] | None:
        """Return a permutation of indices, or ``None`` for FIFO order."""
        raise NotImplementedError


class RandomWalk(ScheduleStrategy):
    """Uniform random walk: shuffle the whole ready queue every pass."""

    name = "random-walk"

    def reorder(self, labels: Sequence[str]) -> Sequence[int] | None:
        """Shuffle the whole ready queue."""
        order = list(range(len(labels)))
        self.rng.shuffle(order)
        return order


class PreemptionBounded(ScheduleStrategy):
    """Mostly-FIFO with a bounded budget of targeted preemptions.

    Random walks spread perturbation thinly over the whole run; most
    schedule bugs need only a few misplaced wake-ups at the wrong await
    point.  This strategy keeps FIFO order except when a control-plane
    task (see :data:`FOCUS_LABELS`) is runnable, where with probability
    ``rate`` it either promotes that task to the front (the critical
    section preempts the dataflow) or demotes it to the back (the
    dataflow barges into the critical section), until ``bound``
    preemptions have been spent; the remaining budget falls back to
    occasional full shuffles so tail diversity is preserved.
    """

    name = "preemption-bounded"

    def __init__(self, seed: int, *, rate: float = 0.25, bound: int = 64) -> None:
        super().__init__(seed)
        self.rate = rate
        self.bound = bound
        self.spent = 0

    def params(self) -> dict[str, str]:
        """Serialize the preemption rate and budget for trace files."""
        return {"rate": repr(self.rate), "bound": str(self.bound)}

    def reorder(self, labels: Sequence[str]) -> Sequence[int] | None:
        """Promote/demote a runnable focus task within the budget."""
        focus = [
            index
            for index, label in enumerate(labels)
            if any(label.startswith(prefix) or prefix in label for prefix in FOCUS_LABELS)
        ]
        if self.spent >= self.bound:
            if self.rng.random() < 0.02:
                order = list(range(len(labels)))
                self.rng.shuffle(order)
                return order
            return None
        if not focus or self.rng.random() >= self.rate:
            return None
        self.spent += 1
        target = self.rng.choice(focus)
        rest = [index for index in range(len(labels)) if index != target]
        if self.rng.random() < 0.5:
            return [target, *rest]
        return [*rest, target]


STRATEGIES: dict[str, type[ScheduleStrategy]] = {
    RandomWalk.name: RandomWalk,
    PreemptionBounded.name: PreemptionBounded,
}


def make_strategy(name: str, seed: int, params: dict[str, str] | None = None) -> ScheduleStrategy:
    """Instantiate a registered strategy from its trace representation."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown schedule strategy {name!r} (known: {known})") from None
    if cls is PreemptionBounded and params:
        return PreemptionBounded(
            seed,
            rate=float(params.get("rate", "0.25")),
            bound=int(params.get("bound", "64")),
        )
    return cls(seed)


# ----------------------------------------------------------------------
# Controller + loop
# ----------------------------------------------------------------------


class ScheduleController:
    """Owns one run's schedule decisions and their replay fingerprint."""

    def __init__(self, strategy: ScheduleStrategy) -> None:
        self.strategy = strategy
        self.decisions = 0
        self.checksum = 0

    def loop_factory(self) -> ScheduledLoop:
        """``asyncio.Runner(loop_factory=controller.loop_factory)``."""
        return ScheduledLoop(self)

    def permute(self, ready: MutableSequence[asyncio.Handle]) -> None:
        """Apply the strategy's reordering to the loop's ready queue."""
        labels = [task_label(handle) for handle in ready]
        order = self.strategy.reorder(labels)
        if order is None:
            return
        if sorted(order) != list(range(len(ready))):
            raise RuntimeError(
                f"strategy {self.strategy.name} returned a non-permutation: {order!r}"
            )
        items = list(ready)
        reordered = [items[index] for index in order]
        ready.clear()
        ready.extend(reordered)
        self.decisions += 1
        self.checksum = zlib.crc32(bytes(index % 256 for index in order), self.checksum)

    def fingerprint(self) -> str:
        """8-hex CRC over every reordering decision taken so far."""
        return f"{self.checksum:08x}"


class ScheduledLoop(VirtualClockLoop):
    """Virtual-clock loop whose ready queue obeys a schedule controller."""

    def __init__(self, controller: ScheduleController) -> None:
        super().__init__()
        self._controller = controller

    def _reorder_ready(self) -> None:
        ready: deque[asyncio.Handle] = self._ready
        if len(ready) > 1:
            self._controller.permute(ready)


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------


@dataclass
class ScheduleTrace:
    """Everything needed to reproduce one explored interleaving."""

    scenario: str
    strategy: str
    seed: int
    decisions: int | None = None
    checksum: str | None = None
    params: dict[str, str] = field(default_factory=dict)
    failure: str | None = None
    #: Canonical result digest of the recorded (failing) run.
    result_hash: str | None = None
    #: The scenario's reference digest, for replaying parity failures.
    reference_hash: str | None = None

    def make_controller(self) -> ScheduleController:
        """Rebuild the schedule controller this trace was recorded with."""
        return ScheduleController(make_strategy(self.strategy, self.seed, self.params))


_TRACE_LINE = re.compile(r"^(?P<key>[A-Za-z0-9_.-]+)=(?P<value>.*)$")


def format_trace(trace: ScheduleTrace) -> str:
    """Render a schedule trace in the chaos-script ``key=value`` grammar."""
    lines = ["# repro race schedule trace"]
    if trace.failure:
        for part in trace.failure.splitlines():
            lines.append(f"# failure: {part}")
    lines.append(f"scenario={trace.scenario}")
    lines.append(f"strategy={trace.strategy}")
    lines.append(f"seed={trace.seed}")
    for key in sorted(trace.params):
        lines.append(f"param.{key}={trace.params[key]}")
    if trace.decisions is not None:
        lines.append(f"decisions={trace.decisions}")
    if trace.checksum is not None:
        lines.append(f"checksum={trace.checksum}")
    if trace.result_hash is not None:
        lines.append(f"result={trace.result_hash}")
    if trace.reference_hash is not None:
        lines.append(f"reference={trace.reference_hash}")
    return "\n".join(lines) + "\n"


def parse_trace(text: str) -> ScheduleTrace:
    """Parse :func:`format_trace` output (tolerates comments/blank lines)."""
    fields: dict[str, str] = {}
    params: dict[str, str] = {}
    failure_lines: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            comment = line.lstrip("#").strip()
            if comment.startswith("failure:"):
                failure_lines.append(comment[len("failure:") :].strip())
            continue
        match = _TRACE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed schedule trace line: {raw!r}")
        key, value = match.group("key"), match.group("value")
        if key.startswith("param."):
            params[key[len("param.") :]] = value
        else:
            fields[key] = value
    missing = {"scenario", "strategy", "seed"} - fields.keys()
    if missing:
        raise ValueError(f"schedule trace missing fields: {sorted(missing)}")
    return ScheduleTrace(
        scenario=fields["scenario"],
        strategy=fields["strategy"],
        seed=int(fields["seed"]),
        decisions=int(fields["decisions"]) if "decisions" in fields else None,
        checksum=fields.get("checksum"),
        params=params,
        failure="\n".join(failure_lines) if failure_lines else None,
        result_hash=fields.get("result"),
        reference_hash=fields.get("reference"),
    )
