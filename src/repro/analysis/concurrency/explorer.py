"""``python -m repro race`` — seeded interleaving exploration.

Each run drives a real scenario (migration, partition rebalance,
admission churn, credit links) on a :class:`ScheduledLoop` whose ready
queue is permuted by a seeded strategy, with the happens-before monitor
installed over the shared runtime state.  After the run the explorer
validates four properties:

* the structural federation audit passes (``audit_federation``);
* the happens-before monitor found no unsuppressed ``DRD0xx`` race;
* latency aggregates are sane (no negative samples leaked in);
* for scenarios whose semantics promise it, the canonical result set
  is bit-identical to the scenario's reference schedule (migration and
  rebalance are exactly-once by construction; admission is excluded —
  registration *time* legitimately decides which tuples a new query
  sees, so its result set is schedule-dependent by design).

Any failure writes a replayable trace file; ``--replay`` re-runs it
bit-identically (same scenario, strategy, seed) and cross-checks the
schedule fingerprint so code drift is reported rather than silently
changing the schedule under the trace.
"""

from __future__ import annotations

import asyncio
import hashlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.concurrency.hb import HBMonitor
from repro.analysis.concurrency.instrument import (
    install_runtime_instrumentation,
    wrap_credit_gate,
)
from repro.analysis.concurrency.schedule import (
    PreemptionBounded,
    RandomWalk,
    ScheduleController,
    ScheduleStrategy,
    ScheduleTrace,
    format_trace,
)
from repro.analysis.invariants import audit_federation

__all__ = [
    "RaceExplorer",
    "RaceFailure",
    "RaceRunResult",
    "RaceSweep",
    "SCENARIOS",
    "result_fingerprint",
]


def result_fingerprint(results: dict[str, list[Any]]) -> str:
    """Canonical digest of a run's result sets.

    Sorted per query by (stream, seq, timestamp) so only the delivered
    *set* matters, never arrival order; duplicates and losses both
    change the digest.
    """
    lines: list[str] = []
    for query_id in sorted(results):
        tuples = sorted(
            results[query_id], key=lambda t: (t.stream_id, t.seq, t.created_at)
        )
        for tup in tuples:
            values = ",".join(f"{k}={tup.values[k]!r}" for k in sorted(tup.values))
            lines.append(
                f"{query_id}|{tup.stream_id}|{tup.seq}|{tup.created_at!r}|{values}"
            )
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class RaceFailure:
    """Why one scheduled run failed validation."""

    kind: str  # audit | race | parity | sanity | scenario | crash
    details: list[str]

    def render(self) -> str:
        """Format the failure as ``[kind] detail`` lines."""
        head = f"[{self.kind}]"
        return "\n".join(f"{head} {line}" for line in self.details)


@dataclass
class RaceRunResult:
    """Outcome of one explored interleaving."""

    scenario: str
    strategy: str
    seed: int
    decisions: int
    checksum: str
    result_hash: str | None = None
    failure: RaceFailure | None = None
    trace_path: Path | None = None
    exercised: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class RaceSweep:
    """Aggregate outcome of a full exploration sweep."""

    runs: list[RaceRunResult] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[RaceRunResult]:
        return [run for run in self.runs if not run.ok]

    @property
    def explored(self) -> int:
        return len(self.runs)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


class Scenario:
    """One concurrency-critical workload recipe.

    ``parity`` marks scenarios whose result set is schedule-invariant;
    ``exercised`` reports the count of interesting control actions
    (migrations, rebalances, admissions, duplicate credits) so the
    sweep can prove it actually stressed the machinery it claims to.
    """

    name = "scenario"
    parity = True

    def run(self, controller: ScheduleController, monitor: HBMonitor) -> RaceRunResult:
        """Execute one schedule of this scenario and validate it."""
        raise NotImplementedError

    def _finish(
        self,
        controller: ScheduleController,
        monitor: HBMonitor,
        problems: dict[str, list[str]],
        result_hash: str | None,
        exercised: int,
        strategy: ScheduleStrategy,
    ) -> RaceRunResult:
        for finding in monitor.findings(root=Path.cwd()):
            problems.setdefault("race", []).append(finding.render())
        failure: RaceFailure | None = None
        for kind in ("crash", "audit", "race", "sanity", "parity", "scenario"):
            if problems.get(kind):
                failure = RaceFailure(kind=kind, details=problems[kind])
                break
        return RaceRunResult(
            scenario=self.name,
            strategy=strategy.name,
            seed=strategy.seed,
            decisions=controller.decisions,
            checksum=controller.fingerprint(),
            result_hash=result_hash,
            failure=failure,
            exercised=exercised,
        )


class _RuntimeScenario(Scenario):
    """Shared driver for scenarios built on a live runtime."""

    span = 1.0

    def __init__(self) -> None:
        self._traces: dict[str, list[Any]] | None = None

    # -- per-scenario hooks --------------------------------------------

    def build(self) -> Any:
        """Return a fresh, submitted runtime for one run."""
        raise NotImplementedError

    def validate(self, runtime: Any, report: Any) -> list[str]:
        """Scenario-specific post-run checks (returns problem strings)."""
        return []

    def exercised(self, runtime: Any, report: Any) -> int:
        """How many control actions this schedule actually provoked."""
        return 0

    # -- driver ---------------------------------------------------------

    def run(self, controller: ScheduleController, monitor: HBMonitor) -> RaceRunResult:
        """Drive the live runtime under the permuted schedule and validate."""
        problems: dict[str, list[str]] = {}
        result_hash: str | None = None
        exercised = 0
        runtime = self.build()
        if self._traces is None:
            # The seeded source trace is a pure function of catalog,
            # config, and drift — record it once and share it across
            # every schedule of this scenario (feeds read it read-only).
            self._traces = runtime._record_trace(self.span)  # repro: allow[INV001]
        runtime.loop_factory = controller.loop_factory
        orig_start = runtime._start_extras  # repro: allow[INV001]

        async def start_extras(flow: Any) -> list[asyncio.Task[Any]]:
            asyncio.get_running_loop().set_task_factory(monitor.task_factory)
            extras = await orig_start(flow)
            install_runtime_instrumentation(monitor, runtime, flow)
            return extras

        runtime._start_extras = start_extras  # repro: allow[INV001]
        runtime._ran = True  # repro: allow[INV001] mirrors LiveRuntime.run
        try:
            report = runtime.report = runtime._drive(  # repro: allow[INV001]
                runtime._execute(self._traces, self.span)  # repro: allow[INV001]
            )
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            problems["crash"] = [f"{type(exc).__name__}: {exc}"]
            return self._finish(
                controller, monitor, problems, None, 0, controller.strategy
            )
        for violation in audit_federation(runtime.planner, trees=runtime.dataflow.trees):
            problems.setdefault("audit", []).append(violation.render())
        metrics = runtime.metrics
        if any(sample < 0 for sample in metrics.result_latencies):
            problems.setdefault("sanity", []).append(
                "negative result-latency sample leaked into the aggregates"
            )
        if any(total < -1e-9 for total in metrics.entity_latency_sum.values()):
            problems.setdefault("sanity", []).append(
                "negative entity latency aggregate"
            )
        for check in self.validate(runtime, report):
            problems.setdefault("scenario", []).append(check)
        result_hash = result_fingerprint(runtime.results)
        exercised = self.exercised(runtime, report)
        return self._finish(
            controller, monitor, problems, result_hash, exercised, controller.strategy
        )


class MigrationScenario(_RuntimeScenario):
    """Drifting-rate selections under the adaptive migration loop.

    Stateless selections (the cross-runtime parity workload) keep the
    result set a pure function of the source trace, so every schedule
    must deliver the identical set — migration is exactly-once by
    construction.
    """

    name = "migration"
    parity = True
    span = 0.9

    def build(self) -> Any:
        from repro.live import LiveSettings
        from repro.live.adaptation import AdaptationSettings, AdaptiveRuntime
        from repro.workloads import apply_rate_drift, crossfade_rates, parity_workload

        catalog, config, queries = parity_workload(11, rate=80.0)
        runtime = AdaptiveRuntime(
            catalog,
            config,
            LiveSettings(
                duration=self.span, batch_size=4, send_timeout=2.0, max_retries=6
            ),
            AdaptationSettings(
                period=0.2, imbalance_threshold=1.02, max_imbalance=1.01
            ),
        )
        runtime.submit(queries)
        hot = {s for s in catalog.stream_ids() if s.startswith("exchange-0")}
        apply_rate_drift(
            runtime.planner.sources,
            crossfade_rates(
                catalog, hot, factor_up=6.0, factor_down=0.25, duration=self.span
            ),
        )
        return runtime

    def exercised(self, runtime: Any, report: Any) -> int:
        """Count completed query migrations."""
        return int(runtime.adaptation_metrics.queries_migrated)


class RebalanceScenario(_RuntimeScenario):
    """Zipf-skewed partitioned aggregates under skew rebalancing.

    The partitioned equivalence proofs promise results identical to the
    serial execution, so the result set is schedule-invariant here too.
    """

    name = "rebalance"
    parity = True
    span = 1.0

    def build(self) -> Any:
        from repro.live import LiveSettings
        from repro.live.adaptation import AdaptationSettings, AdaptiveRuntime
        from repro.workloads import partition_workload

        catalog, config, queries = partition_workload(3)
        runtime = AdaptiveRuntime(
            catalog,
            config,
            LiveSettings(duration=self.span, batch_size=4),
            AdaptationSettings(period=0.4, partition_skew_threshold=1.2),
        )
        runtime.submit(queries)
        return runtime

    def exercised(self, runtime: Any, report: Any) -> int:
        """Count completed partition rebalances."""
        return int(runtime.adaptation_metrics.partition_rebalances)


class AdmissionScenario(_RuntimeScenario):
    """Query churn through the control plane's admission window.

    Not parity-checked: a registration's quiesce window lands at a
    schedule-dependent virtual time, and which tuples a new query sees
    legitimately depends on when its chain was installed.  The audit,
    the race monitor, and the control plane's accounting equation hold
    under every schedule instead.
    """

    name = "admission"
    parity = False
    span = 1.5

    def build(self) -> Any:
        from repro.control import ControlRuntime
        from repro.live import LiveSettings
        from repro.workloads import churn_workload

        catalog, config, queries, events = churn_workload(
            seed=7,
            duration=self.span,
            churn_per_minute=240.0,
            quota_rate=200.0,
        )
        runtime = ControlRuntime(
            catalog, config, LiveSettings(duration=self.span), events=events
        )
        runtime.submit(queries)
        return runtime

    def validate(self, runtime: Any, report: Any) -> list[str]:
        control = report.control
        problems: list[str] = []
        settled = control.registered + control.rejected + control.stranded_in_queue
        if settled != control.arrivals:
            problems.append(
                f"unsettled arrivals: {control.arrivals} seen, "
                f"{control.registered} registered + {control.rejected} rejected "
                f"+ {control.stranded_in_queue} queued"
            )
        return problems

    def exercised(self, runtime: Any, report: Any) -> int:
        """Count settled lifecycle events (registrations + teardowns)."""
        control = report.control
        return int(control.registered + control.torn_down)


class CreditScenario(Scenario):
    """An in-process credit-gated link with stray duplicate CREDITs.

    The clean gate must swallow the duplicates (counting them) without
    ever widening the window past the initial grant (DRD004) and the
    receiver must see every batch exactly once, in order, regardless of
    how sender/receiver/rogue wake-ups interleave.
    """

    name = "credit"
    parity = True
    span = 0.0
    BATCHES = 32
    WINDOW = 4

    def run(self, controller: ScheduleController, monitor: HBMonitor) -> RaceRunResult:
        """Drive an in-process credit gate exchange with rogue duplicates."""
        from repro.distributed.links import CreditGate

        problems: dict[str, list[str]] = {}
        received: list[int] = []
        gate = CreditGate(self.WINDOW)
        wrap_credit_gate(gate, monitor, "race-link")

        async def main() -> None:
            asyncio.get_running_loop().set_task_factory(monitor.task_factory)
            queue: asyncio.Queue[int | None] = asyncio.Queue()

            async def sender() -> None:
                for index in range(self.BATCHES):
                    await gate.acquire()
                    await queue.put(index)
                await queue.put(None)

            async def receiver() -> None:
                while True:
                    item = await queue.get()
                    if item is None:
                        return
                    received.append(item)
                    await gate.release()

            async def rogue() -> None:
                # Stray duplicate CREDIT frames: returned credits the
                # receiver never granted.  The window must not widen.
                for _ in range(6):
                    await asyncio.sleep(0)
                    await gate.release()

            tasks = [
                asyncio.create_task(sender(), name="race:sender"),
                asyncio.create_task(receiver(), name="race:receiver"),
                asyncio.create_task(rogue(), name="race:rogue"),
            ]
            await asyncio.gather(*tasks)

        try:
            with asyncio.Runner(loop_factory=controller.loop_factory) as runner:
                runner.run(main())
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            problems["crash"] = [f"{type(exc).__name__}: {exc}"]
            return self._finish(
                controller, monitor, problems, None, 0, controller.strategy
            )
        if received != list(range(self.BATCHES)):
            problems.setdefault("scenario", []).append(
                f"receiver saw {len(received)} batches, expected "
                f"{self.BATCHES} in order"
            )
        if gate.available > gate.initial:
            problems.setdefault("scenario", []).append(
                f"credit window widened to {gate.available} > {gate.initial}"
            )
        digest = hashlib.sha256(
            ",".join(str(item) for item in received).encode()
        ).hexdigest()
        return self._finish(
            controller,
            monitor,
            problems,
            digest,
            gate.excess_credit_returns,
            controller.strategy,
        )


SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "migration": MigrationScenario,
    "rebalance": RebalanceScenario,
    "admission": AdmissionScenario,
    "credit": CreditScenario,
}

#: Share of the schedule budget each scenario receives in a full sweep.
SCENARIO_WEIGHTS: dict[str, float] = {
    "migration": 0.35,
    "rebalance": 0.30,
    "admission": 0.30,
    "credit": 0.05,
}


# ----------------------------------------------------------------------
# Explorer
# ----------------------------------------------------------------------


class RaceExplorer:
    """Runs the sweep, tracks parity references, writes failure traces."""

    def __init__(
        self,
        *,
        scenarios: Iterable[str] | None = None,
        schedules: int = 560,
        seed: int = 0,
        trace_dir: Path | str = "race-traces",
        progress: Callable[[str], None] | None = None,
    ) -> None:
        names = list(scenarios) if scenarios is not None else list(SCENARIOS)
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            known = ", ".join(sorted(SCENARIOS))
            raise ValueError(f"unknown scenario(s) {unknown} (known: {known})")
        self.names = names
        self.schedules = schedules
        self.seed = seed
        self.trace_dir = Path(trace_dir)
        self.progress = progress or (lambda message: None)
        self.references: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _budget(self) -> dict[str, int]:
        weights = {name: SCENARIO_WEIGHTS.get(name, 0.1) for name in self.names}
        total_weight = sum(weights.values())
        budget = {
            name: max(1, round(self.schedules * weight / total_weight))
            for name, weight in weights.items()
        }
        # Round-off drift: trim/pad the largest bucket so the sweep
        # explores exactly the requested number of schedules.
        drift = sum(budget.values()) - self.schedules
        if drift:
            largest = max(budget, key=lambda name: budget[name])
            budget[largest] = max(1, budget[largest] - drift)
        return budget

    @staticmethod
    def _strategy_for(index: int, seed: int) -> ScheduleStrategy:
        if index % 2 == 0:
            return PreemptionBounded(seed)
        return RandomWalk(seed)

    # ------------------------------------------------------------------
    def run_one(
        self, scenario: Scenario, strategy: ScheduleStrategy
    ) -> RaceRunResult:
        """Run a single schedule; write a trace file on failure."""
        controller = ScheduleController(strategy)
        monitor = HBMonitor()
        result = scenario.run(controller, monitor)
        if scenario.parity and result.ok and result.result_hash is not None:
            reference = self.references.get(scenario.name)
            if reference is None:
                self.references[scenario.name] = result.result_hash
            elif reference != result.result_hash:
                result.failure = RaceFailure(
                    kind="parity",
                    details=[
                        f"result set {result.result_hash[:16]} diverged from "
                        f"the reference schedule's {reference[:16]}"
                    ],
                )
        if result.failure is not None:
            result.trace_path = self._write_trace(result)
        return result

    def _write_trace(self, result: RaceRunResult) -> Path:
        trace = ScheduleTrace(
            scenario=result.scenario,
            strategy=result.strategy,
            seed=result.seed,
            decisions=result.decisions,
            checksum=result.checksum,
            params=dict(self._params_of(result)),
            failure=result.failure.render() if result.failure else None,
            result_hash=result.result_hash,
            reference_hash=self.references.get(result.scenario),
        )
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        path = self.trace_dir / f"race-{result.scenario}-{result.seed}.trace"
        path.write_text(format_trace(trace), encoding="utf-8")
        return path

    @staticmethod
    def _params_of(result: RaceRunResult) -> dict[str, str]:
        strategy = RaceExplorer._strategy_rebuild(result.strategy, result.seed)
        return strategy.params()

    @staticmethod
    def _strategy_rebuild(name: str, seed: int) -> ScheduleStrategy:
        from repro.analysis.concurrency.schedule import make_strategy

        return make_strategy(name, seed)

    # ------------------------------------------------------------------
    def run(self) -> RaceSweep:
        """Explore the full schedule budget across all scenarios."""
        sweep = RaceSweep()
        budget = self._budget()
        for name in self.names:
            scenario = SCENARIOS[name]()
            count = budget[name]
            self.progress(f"{name}: exploring {count} schedules")
            exercised_total = 0
            for index in range(count):
                strategy = self._strategy_for(index, self.seed + index)
                result = self.run_one(scenario, strategy)
                sweep.runs.append(result)
                exercised_total += result.exercised
                if result.failure is not None:
                    self.progress(
                        f"{name}: schedule seed={result.seed} FAILED "
                        f"({result.failure.kind}) -> {result.trace_path}"
                    )
            if exercised_total == 0:
                sweep.notes.append(
                    f"scenario {name} never exercised its control machinery "
                    f"({count} schedules ran but no adaptation action fired)"
                )
            else:
                self.progress(
                    f"{name}: {count} schedules, {exercised_total} control "
                    "actions exercised"
                )
        return sweep

    # ------------------------------------------------------------------
    def replay(self, trace: ScheduleTrace) -> RaceRunResult:
        """Re-run one recorded schedule and cross-check its fingerprint."""
        if trace.scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            raise ValueError(
                f"trace names unknown scenario {trace.scenario!r} (known: {known})"
            )
        scenario = SCENARIOS[trace.scenario]()
        if trace.reference_hash is not None:
            self.references[trace.scenario] = trace.reference_hash
        controller = trace.make_controller()
        monitor = HBMonitor()
        result = scenario.run(controller, monitor)
        if (
            scenario.parity
            and result.ok
            and result.result_hash is not None
            and trace.reference_hash is not None
            and result.result_hash != trace.reference_hash
        ):
            result.failure = RaceFailure(
                kind="parity",
                details=[
                    f"result set {result.result_hash[:16]} diverged from the "
                    f"recorded reference {trace.reference_hash[:16]}"
                ],
            )
        return result
