"""Reproduction of *Scalable and Adaptable Distributed Stream Processing*.

(Yongluan Zhou, ICDE 2006.)

The package implements the paper's two-layer architecture for federated
stream processing:

* the **inter-entity layer** — hierarchical stream dissemination with
  interest-based early filtering, a coordinator tree for scalable query
  distribution, and query-to-entity allocation via weighted graph
  partitioning with adaptive repartitioning;
* the **intra-entity layer** — stream delegation, Performance-Ratio-aware
  operator placement, and an engine-independent Adaptation Module for
  runtime operator ordering.

Everything runs on a deterministic discrete-event simulation substrate
(:mod:`repro.simulation`) so communication cost, latency, and load can be
measured exactly.
"""

__version__ = "1.0.0"

__all__ = [
    "FederatedSystem",
    "SystemConfig",
    "build_demo_system",
    "QuerySpec",
    "Interval",
    "StreamInterest",
    "LiveRuntime",
    "LiveSettings",
    "LiveReport",
]

_LAZY = {
    "FederatedSystem": ("repro.core.system", "FederatedSystem"),
    "SystemConfig": ("repro.core.system", "SystemConfig"),
    "build_demo_system": ("repro.core.system", "build_demo_system"),
    "QuerySpec": ("repro.query.spec", "QuerySpec"),
    "Interval": ("repro.interest.predicates", "Interval"),
    "StreamInterest": ("repro.interest.predicates", "StreamInterest"),
    "LiveRuntime": ("repro.live.runtime", "LiveRuntime"),
    "LiveSettings": ("repro.live.runtime", "LiveSettings"),
    "LiveReport": ("repro.live.metrics", "LiveReport"),
}


def __getattr__(name: str):
    """Lazily import the public API (PEP 562).

    Keeps ``import repro`` cheap and avoids import cycles between the
    façade in :mod:`repro.core` and the subsystem packages.
    """
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
