"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``  — build and run the demo federation, print the run report;
* ``live``  — run a federation on the live asyncio runtime and print
  throughput, per-entity queue depths, and retry/drop counts;
* ``chaos`` — run the live runtime under a deterministic fault script
  (crashes, partitions, latency spikes, stalls) and print the recovery
  report alongside the usual run summary;
* ``adapt`` — run the live runtime with the closed adaptation loop
  under a drifting-rate workload and print the migration/adaptation
  report alongside the usual run summary;
* ``control`` — run the live runtime with the multi-tenant control
  plane: a scripted churn of query registrations/teardowns under
  admission control and per-tenant fair quotas (``--smoke`` runs the
  short audited churn used by CI);
* ``launch`` — run a federation across N worker OS processes connected
  by the binary wire protocol and print the merged federation report;
* ``serve`` — join a distributed federation as a worker process
  (normally spawned by ``launch``, not typed by hand);
* ``query`` — compile one query-language string against a built-in
  catalog, run it on a small federation, and report its results;
* ``profile`` — run a scenario under cProfile and print the hottest
  functions (see docs/performance.md);
* ``experiments`` — list the paper-reproduction experiment index;
* ``lint`` — run the project's AST linter (DET/ASY/INV/PROTO packs)
  with ``--select``/``--ignore`` rule filtering;
* ``race`` — explore seeded task interleavings of the migration /
  rebalance / admission / credit scenarios under the happens-before
  race detector, writing a replayable trace for any failure
  (``--replay`` re-runs one bit-identically);
* ``check`` — audit the paper's structural invariants dynamically;
* ``info``  — package and configuration summary.
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = [
    ("E0", "library micro-kernels", "bench_microkernels.py"),
    ("E1", "Figure 2 query-graph example", "bench_figure2_query_graph.py"),
    ("E2", "Table 1 cooperation taxonomy", "bench_table1_cooperation.py"),
    ("E3", "dissemination scalability", "bench_dissemination_scalability.py"),
    ("E4", "early filtering at ancestors", "bench_early_filtering.py"),
    ("E5", "coordinator tree protocol", "bench_coordinator_tree.py"),
    ("E6", "allocation quality", "bench_allocation_quality.py"),
    ("E7", "adaptive repartitioning", "bench_adaptive_repartitioning.py"),
    ("E8", "stream delegation (Figure 3)", "bench_delegation.py"),
    ("E9", "PR-aware operator placement", "bench_operator_placement.py"),
    ("E10", "adaptive operator ordering", "bench_operator_ordering.py"),
    (
        "E11",
        "assignment vs partitioning",
        "bench_assignment_vs_partitioning.py",
    ),
    ("E12", "end-to-end composition", "bench_end_to_end.py"),
    ("E13", "entity churn resilience", "bench_entity_churn.py"),
    ("E14", "monitored routing signal", "bench_monitored_routing.py"),
    ("E15", "live asyncio federation throughput", "bench_live_throughput.py"),
    ("E16", "failure recovery under chaos", "bench_chaos_recovery.py"),
    ("E17", "live adaptation vs static allocation", "bench_live_adaptation.py"),
    (
        "E18",
        "distributed throughput scaling",
        "bench_distributed_throughput.py",
    ),
    (
        "E19",
        "partitioned joins/aggregates",
        "bench_partitioned_operators.py",
    ),
    (
        "E20",
        "multi-query shared computation",
        "bench_shared_computation.py",
    ),
    (
        "E21",
        "multi-tenant control-plane churn",
        "bench_control_churn.py",
    ),
]


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.system import build_demo_system

    system, queries = build_demo_system(
        seed=args.seed, entity_count=args.entities, query_count=args.queries
    )
    report = system.run(duration=args.duration)
    print(f"demo federation: {args.entities} entities, {len(queries)} queries")
    for line in report.summary_lines():
        print(f"  {line}")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.core.system import SystemConfig
    from repro.live import LiveRuntime, LiveSettings
    from repro.query.generator import WorkloadConfig, generate_workload
    from repro.streams.catalog import stock_catalog

    catalog = stock_catalog(exchanges=2, rate=args.rate)
    config = SystemConfig(
        entity_count=args.entities,
        processors_per_entity=args.processors,
        seed=args.seed,
    )
    try:
        settings = LiveSettings(
            duration=args.duration,
            time_scale=args.time_scale,
            batch_size=args.batch_size,
            channel_capacity=args.capacity,
        )
    except ValueError as exc:
        print(f"invalid live settings: {exc}", file=sys.stderr)
        return 2
    runtime = LiveRuntime(catalog, config, settings)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=args.queries, join_fraction=0.0, aggregate_fraction=0.2
        ),
        seed=args.seed,
    )
    runtime.submit(workload.queries)
    report = runtime.run()
    print(
        f"live federation: {args.entities} entities x {args.processors} "
        f"processors, {args.queries} queries, batch size {args.batch_size}"
    )
    for line in report.summary_lines():
        print(f"  {line}")
    print("per-entity queues:")
    for line in report.queue_lines():
        print(f"  {line}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.core.system import SystemConfig
    from repro.live import (
        ChaosRuntime,
        ChaosSettings,
        LiveSettings,
        format_script,
        parse_script,
        random_script,
    )
    from repro.query.generator import WorkloadConfig, generate_workload
    from repro.streams.catalog import stock_catalog

    catalog = stock_catalog(exchanges=2, rate=args.rate)
    config = SystemConfig(
        entity_count=args.entities,
        processors_per_entity=args.processors,
        seed=args.seed,
    )
    try:
        settings = LiveSettings(
            duration=args.duration,
            batch_size=args.batch_size,
            channel_capacity=args.capacity,
        )
        chaos = ChaosSettings(
            heartbeat_interval=args.heartbeat,
            recovery=not args.no_recovery,
            replay_buffer=args.replay_buffer,
        )
    except ValueError as exc:
        print(f"invalid chaos settings: {exc}", file=sys.stderr)
        return 2
    runtime = ChaosRuntime(catalog, config, settings, chaos=chaos)
    if args.script is not None:
        try:
            with open(args.script, encoding="utf-8") as handle:
                script = parse_script(handle.read())
        except (OSError, ValueError) as exc:
            print(f"cannot load chaos script: {exc}", file=sys.stderr)
            return 2
    else:
        entities = sorted(runtime.planner.entities)
        processors = sorted(
            proc
            for entity in runtime.planner.entities.values()
            for proc in entity.processors
        )
        script = random_script(
            args.seed, entities, processors, args.duration, count=args.faults
        )
    runtime.script = sorted(script)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=args.queries, join_fraction=0.0, aggregate_fraction=0.2
        ),
        seed=args.seed,
    )
    runtime.submit(workload.queries)
    report = runtime.run()
    print(
        f"chaos run: {args.entities} entities x {args.processors} "
        f"processors, {args.queries} queries, "
        f"{len(runtime.script)} scripted faults, "
        f"recovery {'off' if args.no_recovery else 'on'}"
    )
    print("fault script:")
    for line in format_script(runtime.script).splitlines():
        print(f"  {line}")
    for line in report.summary_lines():
        print(f"  {line}")
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    from repro.core.system import SystemConfig
    from repro.live import (
        AdaptationSettings,
        AdaptiveRuntime,
        LiveRuntime,
        LiveSettings,
    )
    from repro.query.generator import WorkloadConfig, generate_workload
    from repro.streams.catalog import stock_catalog
    from repro.workloads import apply_rate_drift, crossfade_rates

    catalog = stock_catalog(exchanges=2, rate=args.rate)
    config = SystemConfig(
        entity_count=args.entities,
        processors_per_entity=args.processors,
        seed=args.seed,
    )
    try:
        settings = LiveSettings(
            duration=args.duration,
            batch_size=args.batch_size,
            channel_capacity=args.capacity,
            send_timeout=2.0,
            max_retries=6,
        )
        adaptation = AdaptationSettings(
            period=args.period,
            strategy=args.strategy,
            imbalance_threshold=args.threshold,
        )
    except ValueError as exc:
        print(f"invalid adaptation settings: {exc}", file=sys.stderr)
        return 2
    if args.static:
        runtime = LiveRuntime(catalog, config, settings)
    else:
        runtime = AdaptiveRuntime(catalog, config, settings, adaptation)
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=args.queries, join_fraction=0.0, aggregate_fraction=0.2
        ),
        seed=args.seed,
    )
    runtime.submit(workload.queries)
    hot = {
        stream_id
        for stream_id in catalog.stream_ids()
        if stream_id.startswith("exchange-0")
    }
    apply_rate_drift(
        runtime.planner.sources,
        crossfade_rates(
            catalog,
            hot,
            factor_up=args.drift_up,
            factor_down=args.drift_down,
            duration=args.duration,
        ),
    )
    report = runtime.run()
    mode = "static" if args.static else f"adaptive/{args.strategy}"
    print(
        f"adaptation run ({mode}): {args.entities} entities x "
        f"{args.processors} processors, {args.queries} queries, "
        f"drifting rates x{args.drift_up}/x{args.drift_down}"
    )
    for line in report.summary_lines():
        print(f"  {line}")
    print("per-entity queues:")
    for line in report.queue_lines():
        print(f"  {line}")
    return 0


def _cmd_control(args: argparse.Namespace) -> int:
    from repro.control import ControlRuntime, ControlSettings
    from repro.live import LiveSettings
    from repro.workloads import churn_workload

    if args.smoke:
        from repro.analysis.invariants import run_control_smoke

        violations = run_control_smoke(seed=args.seed)
        if violations:
            for violation in violations:
                print(violation.render())
            print(f"{len(violations)} invariant violation(s)")
            return 1
        print(
            "control smoke passed: churn script fully accounted, "
            "structural audit clean, multi-tenant delivery"
        )
        return 0
    try:
        catalog, config, queries, events = churn_workload(
            seed=args.seed,
            duration=args.duration,
            churn_per_minute=args.churn,
            quota_rate=args.quota_rate,
        )
        settings = LiveSettings(
            duration=args.duration,
            time_scale=args.time_scale,
            batch_size=args.batch_size,
        )
        control = ControlSettings(retry_period=args.retry_period)
    except ValueError as exc:
        print(f"invalid control settings: {exc}", file=sys.stderr)
        return 2
    runtime = ControlRuntime(
        catalog, config, settings, control=control, events=events
    )
    runtime.submit(queries)
    report = runtime.run()
    registers = sum(1 for e in events if e.action == "register")
    print(
        f"control run: {len(queries)} base queries, "
        f"{registers} arrivals + {len(events) - registers} departures "
        f"scripted over {args.duration:g}s "
        f"({args.churn:g} lifecycle events per virtual minute)"
    )
    for line in report.summary_lines():
        print(f"  {line}")
    return 0


def _cmd_launch(args: argparse.Namespace) -> int:
    from repro.core.system import SystemConfig
    from repro.distributed import DistributedCoordinator
    from repro.live import LiveSettings
    from repro.query.generator import WorkloadConfig, generate_workload
    from repro.streams.catalog import stock_catalog

    catalog = stock_catalog(exchanges=2, rate=args.rate)
    config = SystemConfig(
        entity_count=args.entities,
        processors_per_entity=args.processors,
        seed=args.seed,
    )
    try:
        settings = LiveSettings(
            duration=args.duration,
            batch_size=args.batch_size,
            channel_capacity=args.capacity,
        )
    except ValueError as exc:
        print(f"invalid live settings: {exc}", file=sys.stderr)
        return 2
    workload = generate_workload(
        catalog,
        WorkloadConfig(
            query_count=args.queries, join_fraction=0.0, aggregate_fraction=0.2
        ),
        seed=args.seed,
    )
    coordinator = DistributedCoordinator(
        catalog,
        config,
        workload.queries,
        settings,
        workers=args.workers,
    )
    report = coordinator.run()
    print(
        f"distributed federation: {args.entities} entities across "
        f"{args.workers} worker processes, {args.queries} queries, "
        f"{len(coordinator.required_links)} cross-worker links"
    )
    for line in report.summary_lines():
        print(f"  {line}")
    print("per-entity queues:")
    for line in report.queue_lines():
        print(f"  {line}")
    if coordinator.violations:
        for violation in coordinator.violations:
            print(violation.render())
        print(f"{len(coordinator.violations)} invariant violation(s)")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.distributed import serve

    try:
        return serve(args.coordinator)
    except (ValueError, OSError) as exc:
        print(f"cannot reach coordinator: {exc}", file=sys.stderr)
        return 2


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.system import FederatedSystem, SystemConfig
    from repro.lang import QuerySyntaxError, compile_query
    from repro.streams.catalog import network_catalog, stock_catalog

    catalog = (
        stock_catalog(exchanges=2)
        if args.catalog == "stocks"
        else network_catalog()
    )
    try:
        spec = compile_query(args.text, catalog, query_id="cli-query")
    except QuerySyntaxError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return 2
    system = FederatedSystem(
        catalog,
        SystemConfig(entity_count=4, processors_per_entity=2, seed=args.seed),
    )
    system.submit([spec])
    report = system.run(duration=args.duration)
    entity = system.allocation_result.assignment["cli-query"]
    print(f"query allocated to {entity}")
    print(f"streams: {', '.join(spec.input_streams)}")
    print(f"results in {args.duration:.0f}s: {report.results}")
    print(f"mean latency: {report.mean_result_latency * 1000:.1f} ms")
    pr = system.tracker.pr("cli-query")
    print(f"performance ratio: {pr:.1f}" if pr is not None else
          "performance ratio: n/a (no results)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    if args.scenario == "demo":
        from repro.core.system import build_demo_system

        system, _ = build_demo_system(
            seed=args.seed, entity_count=args.entities, query_count=args.queries
        )

        def scenario():
            return system.run(duration=args.duration)

    else:  # live
        from repro.core.system import SystemConfig
        from repro.live import LiveRuntime, LiveSettings
        from repro.query.generator import WorkloadConfig, generate_workload
        from repro.streams.catalog import stock_catalog

        catalog = stock_catalog(exchanges=2, rate=100.0)
        runtime = LiveRuntime(
            catalog,
            SystemConfig(
                entity_count=args.entities,
                processors_per_entity=3,
                seed=args.seed,
            ),
            LiveSettings(
                duration=args.duration,
                batch_size=args.batch_size,
                batch_execute=not args.per_tuple,
            ),
        )
        workload = generate_workload(
            catalog,
            WorkloadConfig(
                query_count=args.queries,
                join_fraction=0.0,
                aggregate_fraction=0.2,
            ),
            seed=args.seed,
        )
        runtime.submit(workload.queries)
        scenario = runtime.run

    profiler = cProfile.Profile()
    profiler.enable()
    scenario()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if args.output:
        stats.dump_stats(args.output)
        print(f"profile data written to {args.output}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    print(f"{'id':4s} {'paper artifact / claim':36s} bench target")
    for exp_id, title, target in EXPERIMENTS:
        print(f"{exp_id:4s} {title:36s} benchmarks/{target}")
    print("\nrun all with: pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.core.portal import ALLOCATION_NAMES
    from repro.core.system import DISSEMINATION_NAMES
    from repro.placement.factory import PLACER_NAMES

    print(f"repro {repro.__version__} — reproduction of Zhou, ICDE 2006")
    print(f"  dissemination strategies: {', '.join(DISSEMINATION_NAMES)}")
    print(f"  allocation strategies:    {', '.join(ALLOCATION_NAMES)}")
    print(f"  placement strategies:     {', '.join(PLACER_NAMES)}")
    print(f"  experiments:              {len(EXPERIMENTS)} (see 'experiments')")
    return 0


def _parse_rule_prefixes(spec: str | None, known: list[str]) -> list[str] | None:
    """Validate a comma-separated rule/prefix list against known rules.

    Returns the cleaned prefix list, or raises ``ValueError`` naming the
    first prefix that matches no registered rule id.
    """
    if spec is None:
        return None
    prefixes = [part.strip() for part in spec.split(",") if part.strip()]
    for prefix in prefixes:
        if not any(rule_id.startswith(prefix) for rule_id in known):
            raise ValueError(
                f"unknown rule or prefix {prefix!r} "
                f"(known rules: {', '.join(known)})"
            )
    return prefixes


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the project linter.

    Exit codes: 0 = clean, 1 = findings survived, 2 = usage error
    (unknown rule in ``--select``/``--ignore``) or unreadable input.
    """
    from repro.analysis import all_rules, analyze_paths, render_json, render_text

    known = sorted(rule.id for rule in all_rules()) + ["E999"]
    try:
        select = _parse_rule_prefixes(args.select, known)
        ignore = _parse_rule_prefixes(args.ignore, known)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    try:
        findings = analyze_paths(args.paths)
    except OSError as exc:
        print(f"lint: cannot read input: {exc}", file=sys.stderr)
        return 2
    if select is not None:
        findings = [
            finding
            for finding in findings
            if any(finding.rule.startswith(prefix) for prefix in select)
        ]
    if ignore is not None:
        findings = [
            finding
            for finding in findings
            if not any(finding.rule.startswith(prefix) for prefix in ignore)
        ]
    if args.json:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def _cmd_race(args: argparse.Namespace) -> int:
    """Explore seeded interleavings; replay recorded failure traces.

    Exit codes: 0 = every explored schedule validated, 1 = at least one
    failure (a replayable trace was written), 2 = usage error
    (unknown scenario, unreadable/malformed trace file).
    """
    from repro.analysis.concurrency import RaceExplorer, parse_trace

    scenarios = args.scenario or None
    schedules = args.schedules
    if args.smoke:
        # The CI fast path: a bounded budget over the two scenarios
        # exercising migration and admission control machinery.
        scenarios = scenarios or ["migration", "admission"]
        schedules = min(schedules, 25) if schedules else 25
    try:
        explorer = RaceExplorer(
            scenarios=scenarios,
            schedules=schedules or 560,
            seed=args.seed,
            trace_dir=args.trace_dir,
            progress=print,
        )
    except ValueError as exc:
        print(f"race: {exc}", file=sys.stderr)
        return 2

    if args.replay is not None:
        try:
            with open(args.replay, encoding="utf-8") as handle:
                trace = parse_trace(handle.read())
        except (OSError, ValueError) as exc:
            print(f"race: cannot load trace: {exc}", file=sys.stderr)
            return 2
        try:
            result = explorer.replay(trace)
        except ValueError as exc:
            print(f"race: {exc}", file=sys.stderr)
            return 2
        print(
            f"replayed {result.scenario} seed={result.seed} "
            f"strategy={result.strategy}: {result.decisions} schedule "
            f"decisions, fingerprint {result.checksum}"
        )
        if trace.checksum is not None and trace.checksum != result.checksum:
            print(
                f"warning: schedule fingerprint drifted from recorded "
                f"{trace.checksum} (code under the trace has changed)"
            )
        if result.ok:
            print("replay validated: no failure reproduced")
            return 0
        print(result.failure.render())
        return 1

    sweep = explorer.run()
    for note in sweep.notes:
        print(f"note: {note}")
    failures = sweep.failures
    print(
        f"explored {sweep.explored} schedules across "
        f"{len(explorer.names)} scenario(s): "
        f"{len(failures)} failure(s)"
    )
    if failures:
        for run in failures:
            print(f"  {run.scenario} seed={run.seed}: {run.trace_path}")
        print("replay with: python -m repro race --replay <trace>")
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Audit the paper's structural invariants on a demo federation."""
    from repro.analysis.invariants import (
        run_partition_smoke,
        run_sharing_smoke,
        selfcheck,
    )

    violations = selfcheck(
        seed=args.seed,
        entity_count=args.entities,
        query_count=args.queries,
    )
    violations += run_partition_smoke(seed=args.seed)
    violations += run_sharing_smoke(seed=args.seed)
    checks = (
        "coordinator cluster bounds, dissemination tree + interest "
        "coverage, delegation totality, hosting consistency, "
        "allocation balance, partitioned stage layout after skew "
        "rebalance, shared-computation group layout + shared/unshared "
        "result parity"
    )
    if args.distributed:
        from repro.distributed import run_distributed_smoke

        violations += run_distributed_smoke(seed=args.seed)
        checks += (
            ", distributed socket links, frame drain, tuple ledger"
        )
    if violations:
        for violation in violations:
            print(violation.render())
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print(f"invariants hold: {checks}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-layer federated stream processing (ICDE 2006 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the demo federation")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--entities", type=int, default=6)
    demo.add_argument("--queries", type=int, default=60)
    demo.add_argument("--duration", type=float, default=10.0)
    demo.set_defaults(handler=_cmd_demo)

    live = sub.add_parser(
        "live", help="run a federation on the live asyncio runtime"
    )
    live.add_argument("--seed", type=int, default=7)
    live.add_argument("--entities", type=int, default=6)
    live.add_argument("--processors", type=int, default=3)
    live.add_argument("--queries", type=int, default=48)
    live.add_argument("--duration", type=float, default=5.0)
    live.add_argument("--rate", type=float, default=100.0)
    live.add_argument("--batch-size", type=int, default=8)
    live.add_argument("--capacity", type=int, default=256)
    live.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="wall seconds per virtual second (0 = as fast as possible)",
    )
    live.set_defaults(handler=_cmd_live)

    chaos = sub.add_parser(
        "chaos",
        help="run the live runtime under a deterministic fault script",
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--entities", type=int, default=4)
    chaos.add_argument("--processors", type=int, default=2)
    chaos.add_argument("--queries", type=int, default=24)
    chaos.add_argument("--duration", type=float, default=5.0)
    chaos.add_argument("--rate", type=float, default=100.0)
    chaos.add_argument("--batch-size", type=int, default=8)
    chaos.add_argument("--capacity", type=int, default=256)
    chaos.add_argument(
        "--faults",
        type=int,
        default=5,
        help="number of seeded random faults (ignored with --script)",
    )
    chaos.add_argument(
        "--script",
        default=None,
        help="chaos script file (at=.. kind=.. target=.. per line)",
    )
    chaos.add_argument(
        "--heartbeat",
        type=float,
        default=0.05,
        help="heartbeat interval in virtual seconds",
    )
    chaos.add_argument(
        "--replay-buffer",
        type=int,
        default=64,
        help="per-stream delegate replay depth (0 disables replay)",
    )
    chaos.add_argument(
        "--no-recovery",
        action="store_true",
        help="detect failures but do not repair (baseline)",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    adapt = sub.add_parser(
        "adapt",
        help="run the live runtime with the closed adaptation loop",
    )
    adapt.add_argument("--seed", type=int, default=17)
    adapt.add_argument("--entities", type=int, default=4)
    adapt.add_argument("--processors", type=int, default=3)
    adapt.add_argument("--queries", type=int, default=32)
    adapt.add_argument("--duration", type=float, default=3.0)
    adapt.add_argument("--rate", type=float, default=100.0)
    adapt.add_argument("--batch-size", type=int, default=16)
    adapt.add_argument("--capacity", type=int, default=256)
    adapt.add_argument(
        "--period",
        type=float,
        default=0.5,
        help="control-loop period in virtual seconds",
    )
    adapt.add_argument(
        "--strategy",
        choices=("scratch", "cut", "hybrid"),
        default="hybrid",
        help="repartitioning strategy for the adaptation loop",
    )
    adapt.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="observed imbalance ratio that triggers migration",
    )
    adapt.add_argument(
        "--drift-up",
        type=float,
        default=6.0,
        help="rate multiplier the hot exchange ramps up to",
    )
    adapt.add_argument(
        "--drift-down",
        type=float,
        default=0.25,
        help="rate multiplier the cold streams ramp down to",
    )
    adapt.add_argument(
        "--static",
        action="store_true",
        help="disable adaptation (baseline under the same drift)",
    )
    adapt.set_defaults(handler=_cmd_adapt)

    control = sub.add_parser(
        "control",
        help="run the live runtime with the multi-tenant control plane",
    )
    control.add_argument("--seed", type=int, default=7)
    control.add_argument("--duration", type=float, default=5.0)
    control.add_argument(
        "--churn",
        type=float,
        default=240.0,
        help="query lifecycle events (arrivals+departures) per virtual minute",
    )
    control.add_argument(
        "--quota-rate",
        type=float,
        default=200.0,
        help="aggregate tenant quota in tuples per virtual second "
        "(weighted-fair across tenants)",
    )
    control.add_argument(
        "--retry-period",
        type=float,
        default=0.25,
        help="virtual seconds between admission-queue retries",
    )
    control.add_argument("--batch-size", type=int, default=8)
    control.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help="wall seconds per virtual second (0 = as fast as possible)",
    )
    control.add_argument(
        "--smoke",
        action="store_true",
        help="run the short audited churn smoke used by CI and exit",
    )
    control.set_defaults(handler=_cmd_control)

    launch = sub.add_parser(
        "launch",
        help="run a federation across N worker processes over sockets",
    )
    launch.add_argument("--seed", type=int, default=7)
    launch.add_argument("--workers", type=int, default=2)
    launch.add_argument("--entities", type=int, default=6)
    launch.add_argument("--processors", type=int, default=3)
    launch.add_argument("--queries", type=int, default=48)
    launch.add_argument("--duration", type=float, default=5.0)
    launch.add_argument("--rate", type=float, default=100.0)
    launch.add_argument("--batch-size", type=int, default=8)
    launch.add_argument("--capacity", type=int, default=256)
    launch.set_defaults(handler=_cmd_launch)

    serve = sub.add_parser(
        "serve",
        help="join a distributed federation as a worker process",
    )
    serve.add_argument(
        "--coordinator",
        required=True,
        metavar="HOST:PORT",
        help="address of the coordinator's control socket",
    )
    serve.set_defaults(handler=_cmd_serve)

    query = sub.add_parser("query", help="compile and run one query")
    query.add_argument("text", help="query text (see repro.lang)")
    query.add_argument(
        "--catalog", choices=("stocks", "network"), default="stocks"
    )
    query.add_argument("--seed", type=int, default=1)
    query.add_argument("--duration", type=float, default=5.0)
    query.set_defaults(handler=_cmd_query)

    profile = sub.add_parser(
        "profile",
        help="profile a scenario with cProfile and print hot functions",
    )
    profile.add_argument(
        "scenario",
        nargs="?",
        choices=("demo", "live"),
        default="live",
        help="what to profile: the simulated demo or the live runtime",
    )
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument("--entities", type=int, default=4)
    profile.add_argument("--queries", type=int, default=48)
    profile.add_argument("--duration", type=float, default=2.0)
    profile.add_argument("--batch-size", type=int, default=32)
    profile.add_argument(
        "--per-tuple",
        action="store_true",
        help="disable the batch dataplane (profile the per-tuple path)",
    )
    profile.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime", "calls", "ncalls", "time"),
        help="pstats sort key for the printed table",
    )
    profile.add_argument(
        "--limit",
        type=int,
        default=25,
        help="number of functions to print",
    )
    profile.add_argument(
        "--output",
        default=None,
        help="also dump raw pstats data to this file (for snakeviz etc.)",
    )
    profile.set_defaults(handler=_cmd_profile)

    experiments = sub.add_parser(
        "experiments", help="list the paper-reproduction experiments"
    )
    experiments.set_defaults(handler=_cmd_experiments)

    lint = sub.add_parser(
        "lint",
        help="run the project's AST linter (DET/ASY/INV rule packs)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the repro-lint/1 JSON report"
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="only report rules matching these comma-separated ids/prefixes "
        "(e.g. ASY,PROTO001)",
    )
    lint.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="drop rules matching these comma-separated ids/prefixes",
    )
    lint.set_defaults(handler=_cmd_lint)

    race = sub.add_parser(
        "race",
        help="explore seeded task interleavings with the race detector on",
    )
    race.add_argument(
        "--schedules",
        type=int,
        default=None,
        help="total schedules to explore across scenarios (default 560)",
    )
    race.add_argument("--seed", type=int, default=0)
    race.add_argument(
        "--scenario",
        action="append",
        choices=("migration", "rebalance", "admission", "credit"),
        help="restrict to these scenarios (repeatable; default: all)",
    )
    race.add_argument(
        "--smoke",
        action="store_true",
        help="CI fast path: 25 schedules over migration + admission",
    )
    race.add_argument(
        "--replay",
        default=None,
        metavar="TRACE",
        help="re-run one recorded failure trace instead of sweeping",
    )
    race.add_argument(
        "--trace-dir",
        default="race-traces",
        help="directory for failure trace files (default: race-traces)",
    )
    race.set_defaults(handler=_cmd_race)

    check = sub.add_parser(
        "check",
        help="audit the paper's structural invariants on a demo federation",
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--entities", type=int, default=6)
    check.add_argument("--queries", type=int, default=60)
    check.add_argument(
        "--distributed",
        action="store_true",
        help="also run a 2-worker federation and audit its socket links",
    )
    check.set_defaults(handler=_cmd_check)

    info = sub.add_parser("info", help="package summary")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
